"""Benchmark the sharded and batch fleet engines against the baseline.

::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--devices 1000] [--seed 7] [--workers 2 4] [--shards N] \
        [--engine serial|batch|both] [--out BENCH_parallel.json] \
        [--verify-only] [--verify-batch] [--bless-goldens]

For each worker count the harness runs the same scenario through
``FleetSimulator.run(workers=N)``, times it against the sequential
``run()`` baseline, verifies that the merged records are byte-identical
to the sequential run (device, base-station, failure, and transition
records, in order), and writes everything to ``BENCH_parallel.json`` so
future PRs have a recorded perf trajectory:

* ``serial``: baseline wall time and devices/sec;
* one entry per worker count: wall time, devices/sec, measured
  ``speedup_vs_serial``, per-shard stats, ``records_identical``, and a
  ``clean`` flag — a run whose shards were degraded to inline execution
  (supervision retries exhausted) or that fell back to inline mode
  entirely is NOT a parallel measurement, so its throughput is recorded
  under ``degraded`` keys and never conflated with clean numbers;
* ``projected_speedup``: what the same shard workloads would yield if
  the shards ran fully concurrently, computed from per-shard *CPU*
  time (``serial wall / max shard cpu_s``).  CPU time excludes the
  contention sibling workers inflict on each other when the machine
  has fewer idle cores than workers, so it is the honest basis for
  projecting onto a machine with >= N idle cores.  On a single-core
  container the *measured* speedup is necessarily <= 1x; the
  projection is what CI machines and workstations see.
* with ``--engine batch`` or ``both``, a ``batch`` section: the
  vectorized engine's wall time, devices/sec, and
  ``speedup_vs_serial``, plus sharded batch runs whose digests must be
  byte-identical to the inline batch run (the batch RNG is
  counter-based, so sharding and worker count cannot change records),
  and a comparison against the blessed golden digest in
  ``benchmarks/golden_digests.json``.

``--verify-only`` skips the JSON and exits non-zero unless every worker
count reproduces the sequential records exactly — the determinism smoke
used by CI.  ``--verify-batch`` is the batch-engine analogue: inline
batch vs sharded batch digest identity plus the golden-digest check.
``--bless-goldens`` rewrites the golden entry for this scenario —
loudly; blessing is a deliberate act recorded in its own commit.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel.engine import preferred_start_method

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
GOLDEN_PATH = Path(__file__).resolve().parent / "golden_digests.json"


def record_digest(dataset: Dataset) -> str:
    """SHA-256 over the dataset's records (metadata excluded)."""
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


def scenario_for(devices: int, seed: int, metrics: bool = False,
                 engine: str = "serial") -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=devices,
        seed=seed,
        metrics=metrics,
        engine=engine,
        topology=TopologyConfig(
            n_base_stations=max(400, devices // 2), seed=seed + 1
        ),
    )


def run_once(scenario: ScenarioConfig, workers: int | None,
             n_shards: int | None = None) -> tuple[Dataset, float]:
    started = time.perf_counter()
    dataset = FleetSimulator(scenario).run(workers=workers,
                                           n_shards=n_shards)
    return dataset, time.perf_counter() - started


def run_health(dataset: Dataset) -> dict:
    """Clean/degraded classification of one sharded run.

    A "clean" parallel measurement ran in process mode with no shard
    degraded to inline execution and no mode fallback.  Anything else
    measures inline throughput wearing a workers=N label, which is why
    the JSON keeps the two apart.
    """
    execution = dataset.metadata["execution"]
    supervision = execution.get("supervision") or {}
    degraded = list(supervision.get("degraded_shards", []))
    fallback = execution.get("fallback_reason")
    clean = (execution["mode"] == "process" and not degraded
             and not fallback)
    return {
        "mode": execution["mode"],
        "degraded_shards": degraded,
        "fallback_reason": fallback,
        "clean": clean,
    }


def load_goldens() -> dict:
    if GOLDEN_PATH.exists():
        return json.loads(GOLDEN_PATH.read_text())
    return {"_comment": "Blessed batch-engine record digests by "
                        "batch:<devices>:<seed>.  The batch engine's "
                        "counter-based RNG makes these invariant "
                        "across shard counts, worker counts, and "
                        "platforms with identical libm; re-bless only "
                        "deliberately (bench_parallel.py "
                        "--bless-goldens) in a dedicated commit."}


def bench_batch(args: argparse.Namespace, serial_wall: float,
                serial_digest: str, metrics: bool) -> tuple[dict, bool]:
    """The batch-engine section of the report."""
    scenario = scenario_for(args.devices, args.seed, metrics=metrics,
                            engine="batch")
    print(f"batch inline: {args.devices} devices ...", flush=True)
    # Best of two runs: the first pays one-time costs (imports, the
    # precomputed probability tables) that steady-state studies do not;
    # the repeat doubles as an in-process determinism check.
    batch_ds, wall_1 = run_once(scenario, workers=None)
    batch_digest = record_digest(batch_ds)
    batch_metrics = batch_ds.metadata.get("metrics")
    del batch_ds
    repeat_ds, wall_2 = run_once(scenario, workers=None)
    if record_digest(repeat_ds) != batch_digest:
        print("FAIL: batch engine is not deterministic across runs",
              file=sys.stderr)
        return {"error": "nondeterministic"}, False
    del repeat_ds
    batch_wall = min(wall_1, wall_2)
    speedup = serial_wall / batch_wall
    print(f"  {batch_wall:.2f} s "
          f"({args.devices / batch_wall:.0f} devices/s), "
          f"{speedup:.1f}x serial, digest {batch_digest[:12]}")

    ok = True
    sharded_runs = []
    for workers in args.workers:
        print(f"batch workers={workers} ...", flush=True)
        ds, wall = run_once(scenario, workers=workers,
                            n_shards=args.shards)
        digest = record_digest(ds)
        identical = digest == batch_digest
        if batch_metrics is not None:
            identical &= (
                json.dumps(ds.metadata.get("metrics"), sort_keys=True)
                == json.dumps(batch_metrics, sort_keys=True)
            )
        ok &= identical
        health = run_health(ds)
        sharded_runs.append({
            "workers": workers,
            "wall_s": wall,
            "devices_per_s": args.devices / wall,
            "records_identical_to_inline_batch": identical,
            "record_digest": digest,
            **health,
        })
        print(f"  {wall:.2f} s, identical to inline batch: {identical}"
              + ("" if health["clean"]
                 else f"  [NOT CLEAN: mode={health['mode']} "
                      f"degraded={health['degraded_shards']}]"))

    goldens = load_goldens()
    key = f"batch:{args.devices}:{args.seed}"
    golden = goldens.get(key)
    golden_match = None
    if args.bless_goldens:
        goldens[key] = batch_digest
        GOLDEN_PATH.write_text(
            json.dumps(goldens, indent=2, sort_keys=True) + "\n"
        )
        print(f"BLESSED golden digest {key} = {batch_digest[:12]} "
              f"-> {GOLDEN_PATH}")
        golden_match = True
    elif golden is not None:
        golden_match = golden == batch_digest
        ok &= golden_match
        status = "matches" if golden_match else "DIVERGES FROM"
        print(f"  golden {key}: digest {status} blessed value "
              f"{golden[:12]}")
    else:
        print(f"  golden {key}: not blessed yet "
              "(run with --bless-goldens in a dedicated commit)")

    section = {
        "wall_s": batch_wall,
        "devices_per_s": args.devices / batch_wall,
        "speedup_vs_serial": speedup,
        "record_digest": batch_digest,
        "serial_record_digest": serial_digest,
        "digests_differ_from_serial_by_design": batch_digest
        != serial_digest,
        "golden_key": key,
        "golden_match": golden_match,
        "sharded_runs": sharded_runs,
        "sharding_invariant": all(
            r["records_identical_to_inline_batch"] for r in sharded_runs
        ),
    }
    return section, ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--shards", type=int, default=None,
                        help="shard count for the worker runs "
                             "(default: one shard per worker)")
    parser.add_argument("--engine", choices=("serial", "batch", "both"),
                        default="serial",
                        help="which engine(s) to benchmark; 'batch' and "
                             "'both' add the vectorized-engine section")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--verify-only", action="store_true",
                        help="determinism smoke: check record identity "
                             "and exit (no JSON written)")
    parser.add_argument("--verify-batch", action="store_true",
                        help="batch determinism smoke: inline batch vs "
                             "sharded batch digest identity plus the "
                             "golden-digest check; exits non-zero on "
                             "any mismatch (no JSON written)")
    parser.add_argument("--bless-goldens", action="store_true",
                        help="rewrite benchmarks/golden_digests.json "
                             "with this run's batch digest (loud; "
                             "do this in a dedicated commit)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="run with the observability layer enabled "
                             "and write a perf-gate snapshot (counters "
                             "+ durations) here; compare against "
                             "BENCH_baseline.json with "
                             "tools/perf_gate.py")
    args = parser.parse_args(argv)
    metrics = args.metrics_out is not None

    if args.verify_batch:
        scenario = scenario_for(args.devices, args.seed, engine="batch")
        inline_ds, _ = run_once(scenario, workers=None)
        inline_digest = record_digest(inline_ds)
        sharded_ds, _ = run_once(scenario, workers=args.workers[0],
                                 n_shards=args.shards or 5)
        sharded_digest = record_digest(sharded_ds)
        ok = inline_digest == sharded_digest
        print(f"batch inline  {inline_digest[:16]}")
        print(f"batch sharded {sharded_digest[:16]} "
              f"(workers={args.workers[0]}, shards={args.shards or 5})")
        golden = load_goldens().get(f"batch:{args.devices}:{args.seed}")
        if golden is not None:
            if golden != inline_digest:
                print(f"FAIL: batch digest diverged from blessed golden "
                      f"{golden[:16]}", file=sys.stderr)
                ok = False
            else:
                print("golden digest matches")
        if not ok:
            print("FAIL: batch engine is not shard-invariant",
                  file=sys.stderr)
            return 1
        print("OK: batch records invariant under sharding")
        return 0

    scenario = scenario_for(args.devices, args.seed, metrics=metrics)
    print(f"serial baseline: {args.devices} devices ...", flush=True)
    serial_ds, serial_wall = run_once(scenario, workers=None)
    serial_digest = record_digest(serial_ds)
    print(f"  {serial_wall:.2f} s "
          f"({args.devices / serial_wall:.0f} devices/s), "
          f"digest {serial_digest[:12]}")

    serial_metrics = serial_ds.metadata.get("metrics")
    # Release the serial records before timing anything else: ~70
    # record objects per device of allocator pressure would otherwise
    # tax every later measurement in this process.
    del serial_ds

    runs = []
    all_identical = True
    for workers in args.workers:
        print(f"workers={workers} ...", flush=True)
        parallel_ds, wall = run_once(scenario, workers=workers,
                                     n_shards=args.shards)
        digest = record_digest(parallel_ds)
        identical = digest == serial_digest
        if serial_metrics is not None:
            # With metrics on, identity covers the metrics block too.
            identical &= (
                json.dumps(parallel_ds.metadata.get("metrics"),
                           sort_keys=True)
                == json.dumps(serial_metrics, sort_keys=True)
            )
        all_identical &= identical
        execution = parallel_ds.metadata["execution"]
        health = run_health(parallel_ds)
        # Project from CPU time, not shard wall time: on a machine with
        # fewer idle cores than workers the shard walls include sibling
        # contention, which would make the projection pessimistic.
        shard_costs = [s["cpu_s"] or s["wall_s"] for s in execution["shards"]]
        projected = serial_wall / max(shard_costs) if shard_costs else 1.0
        run = {
            "workers": workers,
            "start_method": execution.get("start_method"),
            "wall_s": wall,
            "devices_per_s": args.devices / wall,
            "speedup_vs_serial": serial_wall / wall,
            "projected_speedup": projected,
            "records_identical": identical,
            "record_digest": digest,
            "shards": execution["shards"],
            **health,
        }
        runs.append(run)
        del parallel_ds
        print(f"  {wall:.2f} s ({run['devices_per_s']:.0f} devices/s), "
              f"measured speedup {run['speedup_vs_serial']:.2f}x, "
              f"projected on >={workers} cores "
              f"{projected:.2f}x, identical={identical}"
              + ("" if health["clean"]
                 else f"  [NOT CLEAN: mode={health['mode']} "
                      f"degraded={health['degraded_shards']}]"))

    if args.verify_only:
        if not all_identical:
            print("FAIL: sharded records diverged from serial",
                  file=sys.stderr)
            return 1
        print("OK: all worker counts reproduce the serial records")
        return 0

    batch_section = None
    if args.engine in ("batch", "both"):
        batch_section, batch_ok = bench_batch(
            args, serial_wall, serial_digest, metrics
        )
        all_identical &= batch_ok

    report = {
        "benchmark": "parallel_fleet",
        "scenario": {
            "n_devices": args.devices,
            "seed": args.seed,
            "n_base_stations": scenario.topology.n_base_stations,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "cpus_available": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "start_method": preferred_start_method(),
        },
        "serial": {
            "wall_s": serial_wall,
            "devices_per_s": args.devices / serial_wall,
            "record_digest": serial_digest,
        },
        "runs": runs,
        "all_records_identical": all_identical,
    }
    if batch_section is not None:
        report["batch"] = batch_section
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.metrics_out is not None:
        durations = {
            "serial_wall_s": serial_wall,
            "serial_devices_per_s": args.devices / serial_wall,
        }
        for run in runs:
            # Degraded runs measured inline throughput, not parallel
            # throughput; keep them out of the gated duration keys.
            suffix = "" if run["clean"] else "_degraded"
            durations[f"workers_{run['workers']}_wall_s{suffix}"] = (
                run["wall_s"])
        if batch_section is not None:
            durations["batch_wall_s"] = batch_section["wall_s"]
            durations["batch_devices_per_s"] = (
                batch_section["devices_per_s"])
            durations["batch_speedup_vs_serial"] = (
                batch_section["speedup_vs_serial"])
        snapshot = {
            "benchmark": "perf_gate_snapshot",
            "scenario": report["scenario"],
            "environment": report["environment"],
            "record_digest": serial_digest,
            "all_records_identical": all_identical,
            "counters": serial_metrics["counters"],
            "gauges": serial_metrics["gauges"],
            "durations": durations,
        }
        args.metrics_out.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote perf-gate snapshot {args.metrics_out}")
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
