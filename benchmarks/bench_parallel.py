"""Benchmark the sharded fleet engine against the sequential baseline.

::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--devices 1000] [--seed 7] [--workers 2 4] \
        [--out BENCH_parallel.json] [--verify-only]

For each worker count the harness runs the same scenario through
``FleetSimulator.run(workers=N)``, times it against the sequential
``run()`` baseline, verifies that the merged records are byte-identical
to the sequential run (device, base-station, failure, and transition
records, in order), and writes everything to ``BENCH_parallel.json`` so
future PRs have a recorded perf trajectory:

* ``serial``: baseline wall time and devices/sec;
* one entry per worker count: wall time, devices/sec, measured
  ``speedup_vs_serial``, per-shard stats, and ``records_identical``;
* ``projected_speedup``: what the same shard workloads would yield if
  the shards ran fully concurrently, computed from per-shard *CPU*
  time (``serial wall / max shard cpu_s``).  CPU time excludes the
  contention sibling workers inflict on each other when the machine
  has fewer idle cores than workers, so it is the honest basis for
  projecting onto a machine with >= N idle cores.  On a single-core
  container the *measured* speedup is necessarily <= 1x; the
  projection is what CI machines and workstations see.

``--verify-only`` skips the JSON and exits non-zero unless every worker
count reproduces the sequential records exactly — the determinism smoke
used by CI.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel.engine import preferred_start_method

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def record_digest(dataset: Dataset) -> str:
    """SHA-256 over the dataset's records (metadata excluded)."""
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


def scenario_for(devices: int, seed: int,
                 metrics: bool = False) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=devices,
        seed=seed,
        metrics=metrics,
        topology=TopologyConfig(
            n_base_stations=max(400, devices // 2), seed=seed + 1
        ),
    )


def run_once(scenario: ScenarioConfig, workers: int | None) -> tuple[Dataset, float]:
    started = time.perf_counter()
    dataset = FleetSimulator(scenario).run(workers=workers)
    return dataset, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--verify-only", action="store_true",
                        help="determinism smoke: check record identity "
                             "and exit (no JSON written)")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        help="run with the observability layer enabled "
                             "and write a perf-gate snapshot (counters "
                             "+ durations) here; compare against "
                             "BENCH_baseline.json with "
                             "tools/perf_gate.py")
    args = parser.parse_args(argv)

    scenario = scenario_for(args.devices, args.seed,
                            metrics=args.metrics_out is not None)
    print(f"serial baseline: {args.devices} devices ...", flush=True)
    serial_ds, serial_wall = run_once(scenario, workers=None)
    serial_digest = record_digest(serial_ds)
    print(f"  {serial_wall:.2f} s "
          f"({args.devices / serial_wall:.0f} devices/s), "
          f"digest {serial_digest[:12]}")

    serial_metrics = serial_ds.metadata.get("metrics")

    runs = []
    all_identical = True
    for workers in args.workers:
        print(f"workers={workers} ...", flush=True)
        parallel_ds, wall = run_once(scenario, workers=workers)
        digest = record_digest(parallel_ds)
        identical = digest == serial_digest
        if serial_metrics is not None:
            # With metrics on, identity covers the metrics block too.
            identical &= (
                json.dumps(parallel_ds.metadata.get("metrics"),
                           sort_keys=True)
                == json.dumps(serial_metrics, sort_keys=True)
            )
        all_identical &= identical
        execution = parallel_ds.metadata["execution"]
        # Project from CPU time, not shard wall time: on a machine with
        # fewer idle cores than workers the shard walls include sibling
        # contention, which would make the projection pessimistic.
        shard_costs = [s["cpu_s"] or s["wall_s"] for s in execution["shards"]]
        projected = serial_wall / max(shard_costs) if shard_costs else 1.0
        run = {
            "workers": workers,
            "mode": execution["mode"],
            "start_method": execution.get("start_method"),
            "wall_s": wall,
            "devices_per_s": args.devices / wall,
            "speedup_vs_serial": serial_wall / wall,
            "projected_speedup": projected,
            "records_identical": identical,
            "record_digest": digest,
            "shards": execution["shards"],
        }
        runs.append(run)
        print(f"  {wall:.2f} s ({run['devices_per_s']:.0f} devices/s), "
              f"measured speedup {run['speedup_vs_serial']:.2f}x, "
              f"projected on >={workers} cores "
              f"{projected:.2f}x, identical={identical}")

    if args.verify_only:
        if not all_identical:
            print("FAIL: sharded records diverged from serial",
                  file=sys.stderr)
            return 1
        print("OK: all worker counts reproduce the serial records")
        return 0

    report = {
        "benchmark": "parallel_fleet",
        "scenario": {
            "n_devices": args.devices,
            "seed": args.seed,
            "n_base_stations": scenario.topology.n_base_stations,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "cpus_available": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "start_method": preferred_start_method(),
        },
        "serial": {
            "wall_s": serial_wall,
            "devices_per_s": args.devices / serial_wall,
            "record_digest": serial_digest,
        },
        "runs": runs,
        "all_records_identical": all_identical,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.metrics_out is not None:
        snapshot = {
            "benchmark": "perf_gate_snapshot",
            "scenario": report["scenario"],
            "environment": report["environment"],
            "record_digest": serial_digest,
            "all_records_identical": all_identical,
            "counters": serial_metrics["counters"],
            "gauges": serial_metrics["gauges"],
            "durations": {
                "serial_wall_s": serial_wall,
                "serial_devices_per_s": args.devices / serial_wall,
                **{f"workers_{run['workers']}_wall_s": run["wall_s"]
                   for run in runs},
            },
        }
        args.metrics_out.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote perf-gate snapshot {args.metrics_out}")
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
