"""Fig. 17: failure-likelihood increase of RAT transitions, all six
panels, with the 4G->5G level-0 anchor."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import render_transition_matrix
from repro.analysis.transitions import (
    all_transition_matrices,
    transition_increase_matrix,
    undesirable_cells,
)


def test_fig17f_4g_to_5g(benchmark, vanilla_ds, output_dir):
    matrix = benchmark(
        transition_increase_matrix, vanilla_ds, "4G", "5G"
    )
    emit(output_dir, "fig17f_4g_5g.txt",
         render_transition_matrix(matrix))

    # The four vetoable cases: 4G level-1..4 -> 5G level-0 sharply
    # increase failure likelihood; the paper's (4,0) anchor is +0.37.
    observed = [matrix.increase[i][0] for i in (1, 2, 3, 4)
                if not np.isnan(matrix.increase[i][0])]
    assert len(observed) >= 3
    assert all(value > 0.20 for value in observed)
    anchor = matrix.increase[4][0]
    if not np.isnan(anchor):
        assert 0.25 <= anchor <= 0.70

    # Healthy 5G targets do not carry the penalty.
    safe = [matrix.increase[i][4] for i in range(6)
            if not np.isnan(matrix.increase[i][4])]
    assert safe and all(value < 0.20 for value in safe)


def test_fig17_all_panels(benchmark, vanilla_ds, output_dir):
    matrices = benchmark(all_transition_matrices, vanilla_ds)
    text = "\n".join(
        render_transition_matrix(matrix)
        for matrix in matrices.values()
    )
    emit(output_dir, "fig17_all_panels.txt", text)

    # The common pattern (Sec. 4.2): among all panels' undesirable
    # cells, destinations at level 0 dominate.
    level0 = 0
    total = 0
    for matrix in matrices.values():
        for _i, j, _v in undesirable_cells(matrix, threshold=0.15):
            total += 1
            if j == 0:
                level0 += 1
    assert total >= 4
    assert level0 / total >= 0.4
