"""Table 1: per-model prevalence and frequency.

Regenerates the measured Table 1 and checks its shape against the
published one: prevalence/frequency must correlate across models, and
the published range must bracket the measured values.
"""

import numpy as np

from benchmarks.conftest import emit
from repro import quantities
from repro.analysis.landscape import per_model_stats
from repro.analysis.report import render_table1


def test_table1(benchmark, vanilla_ds, output_dir):
    rows = benchmark(per_model_stats, vanilla_ds)
    emit(output_dir, "table1.txt", render_table1(vanilla_ds))

    published_prevalence = {r.model: r.prevalence
                            for r in quantities.TABLE1}
    published_frequency = {r.model: r.frequency
                           for r in quantities.TABLE1}
    solid = [r for r in rows if r.n_devices >= 40]
    assert len(solid) >= 12

    models = [r.model for r in solid]
    measured_p = np.array([r.prevalence for r in solid])
    paper_p = np.array([published_prevalence[m] for m in models])
    measured_f = np.array([r.frequency for r in solid])
    paper_f = np.array([published_frequency[m] for m in models])

    assert np.corrcoef(paper_p, measured_p)[0, 1] > 0.6
    assert np.corrcoef(paper_f, measured_f)[0, 1] > 0.5
    # Level calibration: mean absolute prevalence error under 8 points.
    assert np.mean(np.abs(measured_p - paper_p)) < 0.08
