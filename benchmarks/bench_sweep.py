"""Sweep-runner benchmark: perf-gate snapshot for `repro sweep`.

::

    PYTHONPATH=src python benchmarks/bench_sweep.py \
        [--packs packs/ci] [--out sweep_bench.json] \
        [--metrics-out sweep_snapshot.json]

Runs the reduced-scale reference sweep **twice** in fresh output
directories and derives a perf-gate snapshot
(:mod:`tools.perf_gate`-compatible):

* ``scenario`` — the pack names plus their content fingerprints, so
  the gate refuses to compare a baseline against an edited pack set;
* ``all_records_identical`` — whether the two sweeps produced
  byte-identical deterministic artifacts (landscape + every
  result.json), measured in this run itself;
* ``counters`` — each pack's deterministic obs counters, prefixed
  ``<pack>::`` so packs cannot collide;
* ``durations.sweep_wall_s`` — wall time of one full sweep (the
  gated key; its ratio bound absorbs CI machine variance).

Bless a new baseline after intentional pack/engine changes::

    PYTHONPATH=src python benchmarks/bench_sweep.py \
        --metrics-out sweep_snapshot.json
    python tools/perf_gate.py --snapshot sweep_snapshot.json \
        --write-baseline BENCH_baseline_sweep.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import (  # noqa: E402
    load_pack,
    resolve_pack_paths,
    run_sweep,
)


def artifact_bytes(out_dir: Path) -> dict[str, bytes]:
    artifacts = {}
    for name in ("landscape.md", "landscape.json"):
        artifacts[name] = (out_dir / name).read_bytes()
    for result in sorted(out_dir.glob("packs/*/result.json")):
        artifacts[str(result.relative_to(out_dir))] = result.read_bytes()
    return artifacts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packs", nargs="+", default=["packs/ci"],
                        help="pack files/directories to sweep "
                             "(default packs/ci)")
    parser.add_argument("--out", type=Path,
                        default=Path("sweep_bench.json"),
                        help="full benchmark report path")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="PATH",
                        help="write the perf-gate snapshot here")
    args = parser.parse_args(argv)

    packs = [load_pack(path)
             for path in resolve_pack_paths(args.packs)]
    names = [pack.name for pack in packs]
    print(f"sweep bench: {len(packs)} pack(s) ({', '.join(names)})")

    walls: list[float] = []
    artifact_sets: list[dict[str, bytes]] = []
    results = []
    for attempt in (1, 2):
        with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
            start = time.monotonic()
            result = run_sweep(packs, Path(tmp))
            wall = time.monotonic() - start
            walls.append(wall)
            artifact_sets.append(artifact_bytes(Path(tmp)))
            results.append(result)
            print(f"  run {attempt}: {wall:.2f} s "
                  f"({len(result.ran)} pack(s))")

    all_identical = artifact_sets[0] == artifact_sets[1]
    if not all_identical:
        diverged = sorted(
            name for name in set(artifact_sets[0])
            | set(artifact_sets[1])
            if artifact_sets[0].get(name) != artifact_sets[1].get(name)
        )
        print(f"DIVERGENCE: {diverged}", file=sys.stderr)

    counters: dict[str, float] = {}
    digests = []
    for outcome in results[0].outcomes:
        for key, value in sorted(outcome.payload["counters"].items()):
            counters[f"{outcome.pack.name}::{key}"] = value
        digests.append(
            f"{outcome.pack.name}:{outcome.payload['record_digest']}"
        )
    combined_digest = hashlib.sha256(
        "\n".join(sorted(digests)).encode()
    ).hexdigest()

    sweep_wall = min(walls)
    report = {
        "benchmark": "scenario_sweep",
        "scenario": {
            "packs": names,
            "fingerprints": {pack.name: pack.fingerprint()
                             for pack in packs},
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "walls_s": walls,
        "all_records_identical": all_identical,
        "record_digest": combined_digest,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.metrics_out is not None:
        snapshot = {
            "benchmark": "perf_gate_snapshot",
            "scenario": report["scenario"],
            "environment": report["environment"],
            "record_digest": combined_digest,
            "all_records_identical": all_identical,
            "counters": counters,
            "gauges": {},
            "durations": {
                "sweep_wall_s": sweep_wall,
                "sweep_packs_per_s": len(packs) / sweep_wall,
            },
        }
        args.metrics_out.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote perf-gate snapshot {args.metrics_out}")
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
