"""Figs. 3 and 4: failures-per-phone and failure-duration CDFs."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import render_cdf
from repro.analysis.stats import (
    compute_general_stats,
    duration_cdf,
    failures_per_phone,
    failures_per_phone_cdf,
)


def test_fig03_failures_per_phone(benchmark, vanilla_ds, output_dir):
    xs, ps = benchmark(failures_per_phone_cdf, vanilla_ds)
    emit(output_dir, "fig03_failures_per_phone.txt",
         render_cdf(xs, ps, label="failures/phone"))

    counts = failures_per_phone(vanilla_ds)
    # Fig. 3: the majority of phones report no failures at all...
    zero_share = float(np.mean(counts == 0))
    assert zero_share > 0.6
    # ...while the tail is enormous relative to the mean (~33).
    assert counts.max() > 20 * counts.mean()


def test_fig04_duration_cdf(benchmark, vanilla_ds, output_dir):
    xs, ps = benchmark(duration_cdf, vanilla_ds)
    emit(output_dir, "fig04_duration.txt",
         render_cdf(xs, ps, label="duration (s)"))

    stats = compute_general_stats(vanilla_ds)
    # Fig. 4 prose: the distribution is highly skewed — most failures
    # are short but the maximum reaches hours.
    assert stats.fraction_under_30s > 0.6
    assert stats.max_duration_s > 3_600.0
    assert stats.mean_duration_s > 3 * stats.median_duration_s
