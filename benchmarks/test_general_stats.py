"""Sec. 3.1 general statistics (the prose numbers around Figs. 3-4)."""

from benchmarks.conftest import emit
from repro.analysis.report import render_general_stats
from repro.analysis.stats import compute_general_stats


def test_general_stats(benchmark, vanilla_ds, output_dir):
    stats = benchmark(compute_general_stats, vanilla_ds)
    emit(output_dir, "general_stats.txt",
         render_general_stats(vanilla_ds))

    # >99% of failures are the three headline types.
    assert stats.headline_type_share > 0.97
    # Frequency ~33 per device; prevalence ~20% fleet-weighted.
    assert 22.0 <= stats.frequency <= 45.0
    assert 0.12 <= stats.prevalence <= 0.30
    # Data_Stall: ~40% of counts, the vast majority of duration.
    assert 0.30 <= stats.count_share_by_type["DATA_STALL"] <= 0.50
    assert stats.duration_share_by_type["DATA_STALL"] > 0.70
    # The per-type per-device means keep the 16 > 14 > 3 ordering.
    means = stats.mean_per_device_by_type
    assert (means["DATA_SETUP_ERROR"] > means["DATA_STALL"]
            > means["OUT_OF_SERVICE"])
    # 95% of phones report no Out_of_Service events.
    assert stats.fraction_devices_without_oos > 0.85
