"""Seed robustness: the reproduced shapes are not one-seed flukes.

Runs small independent fleets at three seeds and requires every core
shape anchor (the scorecard's `shape` checks) to hold in at least two
of the three — and the headline ones in all three.
"""

from benchmarks.conftest import emit
from repro.analysis.validation import build_scorecard
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig

SEEDS = (101, 202, 303)
#: Anchors that must hold at every seed, even at small scale.
ALWAYS = (
    "5G phones fail more (Figs. 6-7)",
    "Android 10 worse than 9 (Figs. 8-9)",
    "RSS monotonicity (Fig. 15)",
    "Data_Stall dominates duration",
)


def _run(seed: int):
    scenario = ScenarioConfig(
        n_devices=1_200, seed=seed,
        topology=TopologyConfig(n_base_stations=900, seed=seed + 1),
    )
    return build_scorecard(FleetSimulator(scenario).run())


def test_shape_anchors_are_seed_robust(benchmark, output_dir):
    scorecards = benchmark.pedantic(
        lambda: {seed: _run(seed) for seed in SEEDS},
        rounds=1, iterations=1,
    )
    by_anchor: dict[str, list[bool]] = {}
    for scorecard in scorecards.values():
        for check in scorecard.checks:
            if check.kind == "shape":
                by_anchor.setdefault(check.name, []).append(check.ok)

    lines = [f"{'anchor':<42} " + "  ".join(f"seed{s}" for s in SEEDS)]
    for name, results in by_anchor.items():
        marks = "  ".join("ok " if ok else "NO " for ok in results)
        lines.append(f"{name:<42} {marks}")
    emit(output_dir, "robustness.txt", "\n".join(lines) + "\n")

    for name, results in by_anchor.items():
        holds = sum(results)
        if name in ALWAYS:
            assert holds == len(SEEDS), (name, results)
        else:
            assert holds >= 2, (name, results)
