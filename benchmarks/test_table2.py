"""Table 2: top-10 Data_Setup_Error codes and their shares."""

from benchmarks.conftest import emit
from repro import quantities
from repro.analysis.decomposition import error_code_decomposition
from repro.analysis.report import render_table2
from repro.core.errorcodes import ProtocolLayer


def test_table2(benchmark, vanilla_ds, output_dir):
    rows = benchmark(error_code_decomposition, vanilla_ds, 10)
    emit(output_dir, "table2.txt", render_table2(vanilla_ds))

    codes = [row.code for row in rows]
    # The paper's leader and runner-up hold their places.
    assert codes[0] == "GPRS_REGISTRATION_FAIL"
    assert "SIGNAL_LOST" in codes[:4]
    # At least seven of the paper's top ten appear in ours.
    overlap = set(codes) & set(quantities.TABLE2_ERROR_CODE_SHARES)
    assert len(overlap) >= 7
    # Cumulative share lands near the published 46.7%.
    cumulative = sum(row.share for row in rows)
    assert 0.38 <= cumulative <= 0.60
    # Causes span the stack (Sec. 3.2's prose point).
    layers = {row.layer for row in rows}
    assert {ProtocolLayer.PHYSICAL, ProtocolLayer.NETWORK} <= layers
