"""Serve-soak smoke: overload a live ``repro serve``, SIGTERM it
mid-soak, resume, and verify nothing was lost or invented.

::

    PYTHONPATH=src python benchmarks/serve_soak_smoke.py \
        [--devices 20] [--per-device 5] [--seed 2020]

The process-level acceptance gate for the live ingest service:

1. **control leg** — start ``python -m repro serve`` as a subprocess,
   push a chaotic fleet (drops, duplicates, reordering) through the
   socket to completion, SIGTERM, and read the drain checkpoint: this
   is the reference dataset;
2. **soak leg** — start a fresh service, push the same fleet through
   worse conditions (a junk-payload connection storm and slow-loris
   clients riding alongside), then SIGTERM **mid-run** while spools
   are still full.  The service must drain, checkpoint, and exit 0,
   and the checkpoint must reconcile with zero unexplained losses;
3. **resume leg** — restart with ``--resume``, point the same fleet
   (spooled payloads, dedup state and all) at the new port, drain,
   SIGTERM again, and require byte-identical accepted records vs the
   control leg, zero unexplained losses, and serve metrics present in
   the Prometheus export.

Exits non-zero on any violation — the CI gate for the serve stack.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backend.ingest import IngestionServer  # noqa: E402
from repro.chaos.config import ChaosConfig  # noqa: E402
from repro.chaos.reconcile import reconcile  # noqa: E402
from repro.serve.harness import (  # noqa: E402
    connection_storm,
    drain_fleet,
    drive_fleet,
    stalled_clients,
    synthetic_records,
)

#: Chaos without permanent-loss channels: drops are retried,
#: duplicates dedup, reordered payloads are delivered late — so every
#: emitted record must ultimately be accepted and the interrupted run
#: can be compared byte-for-byte against the control run.
CHAOS = dict(drop_rate=0.15, duplicate_rate=0.1, reorder_rate=0.05)


class Serve:
    """One ``repro serve`` subprocess with parsed bind address."""

    def __init__(self, checkpoint: Path, resume: bool = False,
                 metrics_out: Path | None = None,
                 prom_out: Path | None = None):
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--checkpoint", str(checkpoint),
            "--read-deadline", "0.5",
            "--drain-timeout", "30",
        ]
        if resume:
            cmd.append("--resume")
        if metrics_out:
            cmd += ["--metrics-out", str(metrics_out)]
        if prom_out:
            cmd += ["--prom-out", str(prom_out)]
        self.proc = subprocess.Popen(
            cmd, env=dict(os.environ, PYTHONPATH="src"),
            cwd=REPO_ROOT, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        self.banner: list[str] = []
        self.host, self.port = self._await_bind()

    def _await_bind(self) -> tuple[str, int]:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.banner.append(line.rstrip())
            if line.startswith("serving on "):
                host, port = line.split()[-1].rsplit(":", 1)
                return host, int(port)
        raise RuntimeError(
            "serve never bound; output so far: %r" % self.banner
        )

    def sigterm(self) -> tuple[int, str]:
        self.proc.send_signal(signal.SIGTERM)
        tail = self.proc.stdout.read()
        code = self.proc.wait(timeout=60)
        return code, tail


def dataset_digest(server_snapshot: dict) -> str:
    hasher = hashlib.sha256()
    for line in sorted(
        json.dumps(record, sort_keys=True)
        for record in server_snapshot["records"]
    ):
        hasher.update(line.encode())
    return hasher.hexdigest()


def reconcile_checkpoint(drive, checkpoint: Path):
    snapshot = json.loads(checkpoint.read_text())
    server = IngestionServer.restore(snapshot["server"])
    return reconcile(
        drive.emitted, server, drive.batchers.values(),
        transport=drive.chaos_transport, service=snapshot,
    ), snapshot


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=20)
    parser.add_argument("--per-device", type=int, default=5)
    parser.add_argument("--seed", type=int, default=2020)
    args = parser.parse_args(argv)

    records = synthetic_records(args.devices, args.per_device,
                                seed=args.seed)
    total = len(records)

    with tempfile.TemporaryDirectory(prefix="serve-soak-") as tmp:
        tmp_path = Path(tmp)

        # -- control leg -----------------------------------------------
        print(f"[1/3] control: {total} records, chaotic transport, "
              f"run to completion")
        ctrl_ckpt = tmp_path / "control.ckpt"
        ctrl = Serve(ctrl_ckpt)
        drive = drive_fleet(records, ctrl.host, ctrl.port,
                            chaos=ChaosConfig(seed=args.seed, **CHAOS))
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("control fleet never drained its spools")
        time.sleep(0.3)  # let the worker clear the admission queue
        code, _tail = ctrl.sigterm()
        drive.close()
        if code != 0:
            return fail(f"control serve exited {code}")
        report, snapshot = reconcile_checkpoint(drive, ctrl_ckpt)
        if not report.ok:
            return fail("control run had unexplained losses:\n"
                        + report.render())
        if report.accepted != total:
            return fail(f"control accepted {report.accepted}/{total}")
        control_digest = dataset_digest(snapshot["server"])
        print(f"      accepted={report.accepted} "
              f"duplicates={report.duplicates} "
              f"digest={control_digest[:12]}")

        # -- soak leg: storms + SIGTERM mid-run ------------------------
        print("[2/3] soak: same fleet + junk storm + slow loris, "
              "SIGTERM mid-run")
        soak_ckpt = tmp_path / "soak.ckpt"
        soak = Serve(soak_ckpt)
        storm = connection_storm(soak.host, soak.port, connections=25,
                                 payloads_per_connection=2)
        if storm.acks.get("ok", 0) == 0:
            return fail("storm payloads were never acked")
        lorised = stalled_clients(soak.host, soak.port, clients=5,
                                  wait_s=3.0)
        if lorised != 5:
            return fail(f"read deadline closed {lorised}/5 "
                        "stalled connections")
        drive = drive_fleet(records, soak.host, soak.port,
                            chaos=ChaosConfig(seed=args.seed, **CHAOS))
        # No drain: spools are still loaded when the SIGTERM lands.
        code, tail = soak.sigterm()
        if code != 0:
            return fail(f"soak serve exited {code} mid-drain: {tail}")
        if "checkpoint written" not in tail:
            return fail(f"soak drain never checkpointed: {tail!r}")
        report, snapshot = reconcile_checkpoint(drive, soak_ckpt)
        if not report.ok:
            return fail("interrupted run had unexplained losses:\n"
                        + report.render())
        mid_accepted = report.accepted
        print(f"      mid-run: accepted={mid_accepted}/{total} "
              f"in_flight={report.in_flight} — all classified")

        # -- resume leg ------------------------------------------------
        print("[3/3] resume from the drain checkpoint and finish")
        prom_out = tmp_path / "serve.prom"
        metrics_out = tmp_path / "serve.metrics.json"
        resumed = Serve(soak_ckpt, resume=True,
                        metrics_out=metrics_out, prom_out=prom_out)
        if not any("resumed from" in line for line in resumed.banner):
            return fail(f"resume leg did not load the checkpoint: "
                        f"{resumed.banner!r}")
        drive = drive_fleet([], resumed.host, resumed.port, drive=drive)
        drain_fleet(drive)
        if drive.pending_payloads:
            return fail("resumed fleet never drained its spools")
        time.sleep(0.3)
        code, _tail = resumed.sigterm()
        drive.close()
        if code != 0:
            return fail(f"resumed serve exited {code}")
        report, snapshot = reconcile_checkpoint(drive, soak_ckpt)
        if not report.ok:
            return fail("resumed run had unexplained losses:\n"
                        + report.render())
        if report.accepted != total:
            return fail(f"resumed run accepted "
                        f"{report.accepted}/{total}")
        final_digest = dataset_digest(snapshot["server"])
        if final_digest != control_digest:
            return fail("resumed dataset diverged from the "
                        f"uninterrupted control run "
                        f"({final_digest[:12]} != "
                        f"{control_digest[:12]})")
        prom_text = prom_out.read_text()
        for metric in ("serve_admitted_total", "serve_frames_total",
                       "serve_breaker_state", "serve_drains_total"):
            if metric not in prom_text:
                return fail(f"{metric} missing from the Prometheus "
                            "export")

        print(f"OK: {total} records, zero unexplained losses across "
              f"SIGTERM + resume; dataset byte-identical to control "
              f"(digest {control_digest[:12]}); serve metrics "
              f"exported")
    return 0


if __name__ == "__main__":
    sys.exit(main())
