"""Sec. 2.2's fleet-wide claim: across all 70M opt-in users, the
monitoring system's aggregate network overhead stayed below 500 KB/s.

We measure per-device upload volume at benchmark scale through the real
uploader (compressed records), then scale to the paper's 70M users over
the eight-month study.
"""

from benchmarks.conftest import emit
from repro import quantities
from repro.monitoring.uploader import UploadBatcher
from repro.simtime import SECONDS_PER_MONTH


def test_aggregate_network_overhead(benchmark, vanilla_ds, output_dir):
    def measure():
        batcher = UploadBatcher()
        for record in vanilla_ds.failures[:20_000]:
            batcher.enqueue(record.to_dict())
        sampled = min(len(vanilla_ds.failures), 20_000)
        return batcher.pending_bytes / sampled

    bytes_per_record = benchmark.pedantic(measure, rounds=1,
                                          iterations=1)
    records_per_device = vanilla_ds.n_failures / vanilla_ds.n_devices
    study_seconds = quantities.STUDY_MONTHS * SECONDS_PER_MONTH
    aggregate_bps = (
        bytes_per_record * records_per_device * quantities.TOTAL_USERS
        / study_seconds
    )
    emit(output_dir, "aggregate_network.txt", "\n".join([
        f"compressed bytes per record: {bytes_per_record:.0f}",
        f"records per device over the study: {records_per_device:.1f}",
        f"aggregate across {quantities.TOTAL_USERS:,} users: "
        f"{aggregate_bps / 1024:.0f} KB/s (paper: < 500 KB/s)",
    ]) + "\n")

    # Sec. 2.2: below 500 KB/s across the whole fleet.
    assert aggregate_bps < 500 * 1024


def test_top_ranked_bses_are_urban(benchmark, bs_rich_ds, output_dir):
    """Fig. 11 prose: the 10,000 top-ranking BSes sit in crowded urban
    areas (here: the top 100 at our scale)."""
    from repro.analysis.isp_bs import top_bs_deployment_mix

    mix = benchmark(top_bs_deployment_mix, bs_rich_ds, 100)
    emit(output_dir, "fig11_top_bs_mix.txt", "\n".join(
        f"{deployment:<15} {share:6.1%}"
        for deployment, share in sorted(mix.items(),
                                        key=lambda kv: -kv[1])
    ) + "\n")
    crowded = (mix.get("TRANSPORT_HUB", 0.0)
               + mix.get("URBAN_CORE", 0.0)
               + mix.get("URBAN", 0.0))
    assert crowded > 0.5
    # Hubs are 0.5% of cells but heavily over-represented at the top.
    assert mix.get("TRANSPORT_HUB", 0.0) > 0.02