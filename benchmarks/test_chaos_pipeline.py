"""Chaos-hardened telemetry pipeline at fleet scale.

Ships a 1k-device fleet's failure records through the lossy transport
(drop + duplicate + reorder + corrupt + two backend outages) and
requires the end-to-end reconciliation to explain every missing
record; then checks that retries at low loss reproduce the lossless
accepted set exactly, and that backend dedup keeps the streaming
aggregates double-count-free under heavy duplication.
"""

import pytest

from benchmarks.conftest import emit
from repro.chaos import ChaosConfig, run_telemetry_pipeline
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.simtime import SECONDS_PER_MONTH

_STUDY_MONTHS = 8.0
_SPAN_S = _STUDY_MONTHS * SECONDS_PER_MONTH
_OUTAGE_S = 12 * 3600.0

#: The acceptance scenario: drop 30%, duplicate 20%, plus reordering,
#: corruption, and two 12-hour backend outages mid-study.
CHAOS = ChaosConfig(
    seed=4242,
    drop_rate=0.30,
    duplicate_rate=0.20,
    reorder_rate=0.05,
    corrupt_rate=0.02,
    outages=(
        (0.30 * _SPAN_S, 0.30 * _SPAN_S + _OUTAGE_S),
        (0.62 * _SPAN_S, 0.62 * _SPAN_S + _OUTAGE_S),
    ),
)

SCENARIO = ScenarioConfig(
    n_devices=1_000,
    seed=404,
    study_months=_STUDY_MONTHS,
    topology=TopologyConfig(n_base_stations=800, seed=405),
)


@pytest.fixture(scope="module")
def fleet_ds():
    """One 1k-device fleet, replayed under several chaos policies."""
    return FleetSimulator(SCENARIO).run()


def test_chaos_fleet_reconciles(benchmark, fleet_ds, output_dir):
    result = benchmark.pedantic(
        lambda: run_telemetry_pipeline(fleet_ds, CHAOS),
        rounds=1, iterations=1,
    )
    report = result.report

    lines = [
        f"uploading devices: {result.n_devices} "
        f"/ {SCENARIO.n_devices}   "
        f"drain rounds: {result.drain_rounds}",
        f"chaos: drop={CHAOS.drop_rate:.0%} "
        f"dup={CHAOS.duplicate_rate:.0%} "
        f"reorder={CHAOS.reorder_rate:.0%} "
        f"corrupt={CHAOS.corrupt_rate:.0%} "
        f"outages={len(CHAOS.outages)}x{_OUTAGE_S / 3600:.0f}h",
        "",
        report.render(),
    ]
    emit(output_dir, "chaos_pipeline.txt", "\n".join(lines) + "\n")

    # Zero unexplained discrepancies: accepted equals emitted minus
    # explicitly classified losses.
    assert report.ok, report.unexplained
    assert report.emitted == len(fleet_ds.failures)
    assert report.accepted == report.emitted - report.explained_losses
    # The injected faults actually fired.
    assert result.transport.dropped > 0
    assert result.transport.duplicated > 0
    assert result.transport.outage_rejections > 0
    assert result.server.duplicates > 0


def test_low_drop_retries_match_lossless_run(fleet_ds):
    """With retries enabled, 10% transit loss is invisible end to end:
    the accepted set exactly matches the lossless run's."""
    low_drop = ChaosConfig(seed=4242, drop_rate=0.10, max_attempts=12)
    lossy = run_telemetry_pipeline(fleet_ds, low_drop)
    lossless = run_telemetry_pipeline(fleet_ds, low_drop.lossless())

    assert lossless.report.accepted == lossless.report.emitted
    assert (lossy.server.accepted_keys
            == lossless.server.accepted_keys)
    assert lossy.report.accepted == lossy.report.emitted
    assert lossy.transport.dropped > 0  # the losses were real


def test_dedup_holds_under_duplication(fleet_ds):
    """No record is double-counted in the streaming aggregates, no
    matter how many duplicate deliveries the transport injects."""
    chaos = ChaosConfig(seed=77, drop_rate=0.05, duplicate_rate=0.20)
    result = run_telemetry_pipeline(fleet_ds, chaos)
    server = result.server

    assert server.duplicates > 0
    assert server.accepted == len(server.accepted_keys)
    assert sum(
        stats.count for stats in server.duration_stats.values()
    ) == server.accepted
    assert server.duration_median.count == server.accepted
