"""The paper-vs-measured scorecard over the benchmark fleet."""

from benchmarks.conftest import emit
from repro.analysis.validation import build_scorecard


def test_scorecard(benchmark, vanilla_ds, patched_ds, output_dir):
    scorecard = benchmark.pedantic(
        build_scorecard, args=(vanilla_ds, patched_ds),
        rounds=1, iterations=1,
    )
    emit(output_dir, "scorecard.txt", scorecard.render())
    assert scorecard.total >= 15
    failures = scorecard.failures()
    assert not failures, [check.name for check in failures]
