"""Sweep kill-and-resume smoke: SIGKILL a pack sweep, resume, verify.

::

    PYTHONPATH=src python benchmarks/sweep_resume_smoke.py \
        [--packs packs/ci] [--kill-timeout-s 300]

The harness proves the sweep runner's durability contract end to end
at the process level:

1. run an undisturbed **control** sweep of the pack set and record
   the bytes of every deterministic artifact (``landscape.md``,
   ``landscape.json``, each pack's ``result.json``);
2. start the same sweep in a fresh output directory as a subprocess
   and SIGKILL it the moment the first pack's ``result.json`` lands —
   the sweep dies with later packs unstarted or mid-flight;
3. rerun with ``--resume`` and assert (a) every pack completed before
   the kill was *skipped*, not re-simulated, and (b) every
   deterministic artifact is byte-identical to the control sweep;
4. rerun with ``--resume`` once more: now *every* pack must skip and
   the artifacts must still match.

Exits non-zero on any violation — the CI gate for the sweep runner
(the ``sweep-smoke`` job).
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))


def sweep_cmd(packs: list[str], out_dir: Path,
              resume: bool = False) -> list[str]:
    cmd = [sys.executable, "-m", "repro", "sweep", *packs,
           "--out", str(out_dir)]
    if resume:
        cmd.append("--resume")
    return cmd


def artifact_bytes(out_dir: Path) -> dict[str, bytes]:
    """Every deterministic sweep artifact, keyed by relative path."""
    artifacts = {}
    for name in ("landscape.md", "landscape.json"):
        artifacts[name] = (out_dir / name).read_bytes()
    for result in sorted(out_dir.glob("packs/*/result.json")):
        artifacts[str(result.relative_to(out_dir))] = result.read_bytes()
    return artifacts


def completed_packs(out_dir: Path) -> list[str]:
    return sorted(path.parent.name
                  for path in out_dir.glob("packs/*/result.json"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packs", nargs="+", default=["packs/ci"],
                        help="pack files/directories to sweep "
                             "(default packs/ci)")
    parser.add_argument("--kill-timeout-s", type=float, default=300.0,
                        help="give up if no pack completes in time")
    args = parser.parse_args(argv)

    env = dict(os.environ, PYTHONPATH="src")
    with tempfile.TemporaryDirectory(prefix="sweep-smoke-") as tmp:
        control_dir = Path(tmp) / "control"
        disturbed_dir = Path(tmp) / "disturbed"

        print(f"[1/4] control sweep of {' '.join(args.packs)}")
        control = subprocess.run(
            sweep_cmd(args.packs, control_dir), env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if control.returncode != 0:
            print(f"FAIL: control sweep exited {control.returncode}\n"
                  f"{control.stdout}", file=sys.stderr)
            return 1
        control_artifacts = artifact_bytes(control_dir)
        all_packs = completed_packs(control_dir)
        print(f"      control complete: {all_packs}")

        print("[2/4] disturbed sweep, SIGKILL after the first pack "
              "completes")
        victim = subprocess.Popen(
            sweep_cmd(args.packs, disturbed_dir), env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + args.kill_timeout_s
        while time.monotonic() < deadline:
            if completed_packs(disturbed_dir):
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=60)
            print("      SIGKILLed the sweep mid-flight")
        else:
            # The sweep beat us to completion; the resume legs still
            # prove complete-pack skipping and byte-identity.
            print("      sweep finished before the kill landed; "
                  "resume must skip every pack")
        survivors = completed_packs(disturbed_dir)
        if not survivors:
            print("FAIL: no pack completed before the kill; nothing "
                  "to resume", file=sys.stderr)
            return 1
        print(f"      packs completed before resume: {survivors}")

        print("[3/4] resuming the disturbed sweep")
        resume = subprocess.run(
            sweep_cmd(args.packs, disturbed_dir, resume=True),
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if resume.returncode != 0:
            print(f"FAIL: resume exited {resume.returncode}\n"
                  f"{resume.stdout}", file=sys.stderr)
            return 1
        skipped = [line for line in resume.stdout.splitlines()
                   if ": skipped (complete" in line]
        for pack in survivors:
            if not any(f" {pack}: skipped" in line for line in skipped):
                print(f"FAIL: pack {pack!r} completed before the kill "
                      f"but was re-simulated on resume\n{resume.stdout}",
                      file=sys.stderr)
                return 1
        print(f"      resume skipped {len(skipped)} completed pack(s)")

        resumed_artifacts = artifact_bytes(disturbed_dir)
        if set(resumed_artifacts) != set(control_artifacts):
            print(f"FAIL: artifact sets differ\n"
                  f"  control: {sorted(control_artifacts)}\n"
                  f"  resumed: {sorted(resumed_artifacts)}",
                  file=sys.stderr)
            return 1
        for name, blob in sorted(control_artifacts.items()):
            if resumed_artifacts[name] != blob:
                print(f"FAIL: {name} diverges from the control sweep",
                      file=sys.stderr)
                return 1

        print("[4/4] second resume: every pack must skip")
        again = subprocess.run(
            sweep_cmd(args.packs, disturbed_dir, resume=True),
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        if again.returncode != 0:
            print(f"FAIL: second resume exited {again.returncode}\n"
                  f"{again.stdout}", file=sys.stderr)
            return 1
        skipped_again = [line for line in again.stdout.splitlines()
                         if ": skipped (complete" in line]
        if len(skipped_again) != len(all_packs):
            print(f"FAIL: second resume re-ran packs "
                  f"({len(skipped_again)}/{len(all_packs)} skipped)\n"
                  f"{again.stdout}", file=sys.stderr)
            return 1
        final_artifacts = artifact_bytes(disturbed_dir)
        if final_artifacts != control_artifacts:
            print("FAIL: artifacts changed across a no-op resume",
                  file=sys.stderr)
            return 1

        print(f"OK: sweep kill-and-resume byte-identical "
              f"({len(survivors)}/{len(all_packs)} pack(s) survived "
              "the kill and were skipped on resume)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
