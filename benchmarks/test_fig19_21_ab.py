"""Figs. 19-21: the deployment evaluation of both enhancements."""

import pytest

from benchmarks.conftest import emit
from repro.analysis.evaluation import evaluate_ab
from repro.analysis.report import render_ab_evaluation


@pytest.fixture(scope="module")
def evaluation(vanilla_ds, patched_ds):
    return evaluate_ab(vanilla_ds, patched_ds)


def test_fig19_20_rat_transition_ab(benchmark, vanilla_ds, patched_ds,
                                    output_dir):
    evaluation = benchmark(evaluate_ab, vanilla_ds, patched_ds)
    emit(output_dir, "fig19_21_ab.txt",
         render_ab_evaluation(evaluation))

    # Fig. 20: ~40.3% fewer failures on participant 5G phones.
    assert 0.25 <= evaluation.frequency_reduction_5g <= 0.55
    # Fig. 19: prevalence improves more weakly (~10% in the paper).
    assert evaluation.prevalence_reduction_5g > -0.10
    # Per-type frequency reductions are all positive (Sec. 4.3).
    for delta in evaluation.per_type.values():
        assert delta.frequency_reduction > 0.0


def test_fig21_recovery_ab(evaluation, benchmark):
    def durations():
        return (evaluation.stall_duration_reduction,
                evaluation.total_duration_reduction)

    stall_reduction, total_reduction = benchmark(durations)
    # Fig. 21: -38% Data_Stall duration, -36% total duration.
    assert 0.15 <= stall_reduction <= 0.60
    assert 0.15 <= total_reduction <= 0.60
    # Medians must not regress.
    assert (evaluation.median_duration_after_s
            <= evaluation.median_duration_before_s * 1.2)
