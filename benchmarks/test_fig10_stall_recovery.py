"""Fig. 10: most Data_Stall failures fix themselves in seconds."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import render_cdf
from repro.analysis.stats import (
    stage_fix_rate,
    stall_autofix_cdf,
    stall_autofix_durations,
)


def test_fig10_autofix_cdf(benchmark, vanilla_ds, output_dir):
    xs, ps = benchmark(stall_autofix_cdf, vanilla_ds)
    emit(output_dir, "fig10_stall_autofix.txt",
         render_cdf(xs, ps, label="auto-fix time (s)"))

    durations = stall_autofix_durations(vanilla_ds)
    assert len(durations) > 500
    # Fig. 10 prose: 60% of Data_Stalls auto-fix within ~10 s (our
    # measurements carry up to 5 s of probing error).
    within_15 = float(np.mean(durations <= 15.0))
    assert within_15 > 0.45


def test_stage1_effectiveness(benchmark, vanilla_ds, output_dir):
    """Sec. 3.2: once executed, even the lightweight first stage fixes
    most stalls (75% in the paper)."""
    rate = benchmark(stage_fix_rate, vanilla_ds, 1)
    emit(output_dir, "stage1_fix_rate.txt",
         f"stage-1 fix rate once executed: {rate:.1%} "
         "(paper: 75%)\n")
    assert rate > 0.45
