"""Check that documentation code blocks stay truthful.

::

    PYTHONPATH=src python tools/check_doc_blocks.py [paths...]

Walks every fenced code block in ``README.md`` and ``docs/*.md`` (or
the given paths) and, for blocks that mention ``repro``:

* ``python`` blocks must **compile**, and every top-level
  ``import repro...`` / ``from repro... import ...`` statement in them
  must **execute** — so a renamed module or export breaks the build,
  not a reader;
* JSON blocks must parse.

Blocks in other languages (``bash``, ASCII diagrams, plain fences) are
skipped — shell snippets are exercised by the CLI tests instead.

Exits non-zero listing every offending block with its file and line.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(
    r"^```(?P<lang>[A-Za-z0-9_+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def default_paths() -> list[Path]:
    paths = [REPO_ROOT / "README.md"]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return paths


def iter_blocks(path: Path):
    """Yield (lang, body, line_number) for each fenced block."""
    text = path.read_text(encoding="utf-8")
    for match in FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield match.group("lang").lower(), match.group("body"), line


def check_python_block(body: str) -> list[str]:
    """Problems with one python block (empty list when clean)."""
    try:
        tree = ast.parse(body)
    except SyntaxError as exc:
        return [f"does not compile: {exc.msg} (block line {exc.lineno})"]

    problems = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            source = ast.get_source_segment(body, node) or ast.unparse(node)
            if "repro" not in source:
                continue
            try:
                exec(compile(ast.Module(body=[node], type_ignores=[]),
                             "<doc-block>", "exec"), {})
            except Exception as exc:
                problems.append(
                    f"import fails: {source!r} -> "
                    f"{type(exc).__name__}: {exc}"
                )
    return problems


def check_file(path: Path) -> list[str]:
    failures = []
    for lang, body, line in iter_blocks(path):
        if "repro" not in body:
            continue
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        where = f"{shown}:{line}"
        if lang in ("python", "py"):
            for problem in check_python_block(body):
                failures.append(f"{where}: {problem}")
        elif lang == "json":
            try:
                json.loads(body)
            except ValueError as exc:
                failures.append(f"{where}: invalid JSON: {exc}")
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(arg) for arg in argv] or default_paths()
    failures: list[str] = []
    checked = 0
    for path in paths:
        checked += 1
        failures.extend(check_file(path))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"FAIL: {len(failures)} bad doc block(s) "
              f"across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"OK: doc blocks in {checked} file(s) compile and import")
    return 0


if __name__ == "__main__":
    sys.exit(main())
