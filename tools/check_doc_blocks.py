"""Check that documentation code blocks stay truthful.

::

    PYTHONPATH=src python tools/check_doc_blocks.py [paths...]

Walks every fenced code block in ``README.md`` and ``docs/*.md`` (or
the given paths) and, for blocks that mention ``repro``:

* ``python`` blocks must **compile**, and every top-level
  ``import repro...`` / ``from repro... import ...`` statement in them
  must **execute** — so a renamed module or export breaks the build,
  not a reader;
* JSON blocks must parse;
* ``bash``/``console``/``shell``/``sh`` blocks: every line that invokes
  the CLI (``repro ...`` or ``python -m repro ...``, with optional
  ``$`` prompt, environment-variable prefixes, and backslash
  continuations) must **parse against the real argparse tree**
  (``repro.cli.build_parser()``) — so a renamed subcommand or flag in
  the docs fails the build, not a reader's terminal.  Usage synopses
  (lines with ``[...]`` placeholder brackets) are skipped, and the
  command is truncated at shell operators (``|``, ``>``, ``&&`` ...).

Blocks in other languages (ASCII diagrams, plain fences) are skipped.

Exits non-zero listing every offending block with its file and line.
"""

from __future__ import annotations

import ast
import io
import json
import re
import shlex
import sys
from contextlib import redirect_stderr
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fence languages whose ``repro`` CLI lines get argparse-validated.
SHELL_LANGS = ("bash", "console", "shell", "sh")

_ENV_ASSIGNMENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*=")
_SHELL_OPERATORS = frozenset({"|", "||", "&&", ";", "&", ">", ">>", "<",
                              "2>&1"})

FENCE_RE = re.compile(
    r"^```(?P<lang>[A-Za-z0-9_+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def default_paths() -> list[Path]:
    paths = [REPO_ROOT / "README.md"]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return paths


def iter_blocks(path: Path):
    """Yield (lang, body, line_number) for each fenced block."""
    text = path.read_text(encoding="utf-8")
    for match in FENCE_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        yield match.group("lang").lower(), match.group("body"), line


def check_python_block(body: str) -> list[str]:
    """Problems with one python block (empty list when clean)."""
    try:
        tree = ast.parse(body)
    except SyntaxError as exc:
        return [f"does not compile: {exc.msg} (block line {exc.lineno})"]

    problems = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            source = ast.get_source_segment(body, node) or ast.unparse(node)
            if "repro" not in source:
                continue
            try:
                exec(compile(ast.Module(body=[node], type_ignores=[]),
                             "<doc-block>", "exec"), {})
            except Exception as exc:
                problems.append(
                    f"import fails: {source!r} -> "
                    f"{type(exc).__name__}: {exc}"
                )
    return problems


def _cli_parser():
    """The real ``repro`` argparse tree (imported lazily, cached)."""
    global _PARSER
    if _PARSER is None:
        try:
            from repro.cli import build_parser
        except ImportError:
            sys.path.insert(0, str(REPO_ROOT / "src"))
            from repro.cli import build_parser
        _PARSER = build_parser()
    return _PARSER


_PARSER = None


def logical_lines(body: str) -> list[str]:
    """Block lines with backslash continuations joined."""
    lines: list[str] = []
    acc = ""
    for raw in body.splitlines():
        line = (acc + " " + raw.strip()) if acc else raw.rstrip()
        acc = ""
        if line.endswith("\\"):
            acc = line[:-1].rstrip()
            continue
        lines.append(line)
    if acc:
        lines.append(acc)
    return lines


def extract_cli_args(line: str) -> list[str] | None:
    """The argv a CLI invocation passes to ``repro``, or None.

    Recognizes ``repro ...`` and ``python -m repro ...`` (optionally
    prefixed by a ``$`` prompt and/or ``VAR=value`` assignments),
    truncates at shell operators, and returns None for usage synopses
    containing ``[...]``/``...`` placeholder notation.
    """
    stripped = line.strip()
    if stripped.startswith("$"):
        stripped = stripped[1:].lstrip()
    try:
        tokens = shlex.split(stripped, comments=True)
    except ValueError:
        return None
    while tokens and _ENV_ASSIGNMENT_RE.match(tokens[0]):
        tokens.pop(0)
    if not tokens:
        return None
    if tokens[0] == "repro":
        args = tokens[1:]
    elif (tokens[0] in ("python", "python3")
          and tokens[1:3] == ["-m", "repro"]):
        args = tokens[3:]
    else:
        return None
    argv: list[str] = []
    for token in args:
        if token in _SHELL_OPERATORS or token.startswith((">", "<")):
            break
        argv.append(token)
    if any(token.startswith("[") or token.endswith("]")
           or "..." in token for token in argv):
        return None  # usage synopsis, not an invocation
    return argv


def check_shell_block(body: str) -> list[str]:
    """CLI invocations in one shell block that argparse rejects."""
    problems = []
    for line in logical_lines(body):
        argv = extract_cli_args(line)
        if argv is None:
            continue
        stderr = io.StringIO()
        try:
            with redirect_stderr(stderr):
                _cli_parser().parse_args(argv)
        except SystemExit as exc:
            if exc.code not in (0, None):
                detail = stderr.getvalue().strip().splitlines()
                problems.append(
                    f"CLI invocation does not parse: "
                    f"'repro {' '.join(argv)}' -> "
                    f"{detail[-1] if detail else 'argparse error'}"
                )
    return problems


def check_file(path: Path) -> list[str]:
    failures = []
    for lang, body, line in iter_blocks(path):
        if "repro" not in body:
            continue
        try:
            shown = path.relative_to(REPO_ROOT)
        except ValueError:
            shown = path
        where = f"{shown}:{line}"
        if lang in ("python", "py"):
            for problem in check_python_block(body):
                failures.append(f"{where}: {problem}")
        elif lang == "json":
            try:
                json.loads(body)
            except ValueError as exc:
                failures.append(f"{where}: invalid JSON: {exc}")
        elif lang in SHELL_LANGS:
            for problem in check_shell_block(body):
                failures.append(f"{where}: {problem}")
    return failures


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    paths = [Path(arg) for arg in argv] or default_paths()
    failures: list[str] = []
    checked = 0
    for path in paths:
        checked += 1
        failures.extend(check_file(path))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        print(f"FAIL: {len(failures)} bad doc block(s) "
              f"across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"OK: doc blocks in {checked} file(s) compile, import, "
          "and CLI lines parse")
    return 0


if __name__ == "__main__":
    sys.exit(main())
