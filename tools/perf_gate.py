"""CI perf-regression gate over metrics snapshots.

::

    PYTHONPATH=src python tools/perf_gate.py \
        --baseline BENCH_baseline.json --snapshot perf_snapshot.json

Compares a fresh perf-gate snapshot (produced by
``benchmarks/bench_parallel.py --metrics-out``) against the committed
baseline and exits non-zero on regression.  Checks, strongest first:

1. **determinism** — the snapshot's ``all_records_identical`` must be
   true (the sharded run reproduced the serial records and metrics in
   the snapshot run itself; machine-independent);
2. **counters** — event counters are deterministic at a fixed seed, so
   any drift beyond ``counter_rel_tolerance`` (baseline fraction;
   default 2%, which absorbs libm last-ulp differences across
   platforms) fails, as do counters that appear or disappear;
3. **durations** — wall times may not exceed ``max_wall_ratio`` times
   the baseline (generous by default: CI machines vary, and the
   counters are the precise instrument);
4. **digest** — optional exact record-digest match
   (``require_digest_match``; off by default because digests can
   legitimately differ across platforms' libm).

Intentional changes (new instrumentation, changed event mix) are
blessed by refreshing the baseline::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        --devices 400 --workers 2 --metrics-out perf_snapshot.json
    python tools/perf_gate.py --snapshot perf_snapshot.json \
        --write-baseline BENCH_baseline.json

In CI, apply the ``perf-gate-override`` label to the pull request (or
set ``PERF_GATE_OVERRIDE=1``) to turn regressions into warnings for
that run — the PR must then also refresh ``BENCH_baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Thresholds written into fresh baselines and assumed for baselines
#: that omit the block.
DEFAULT_THRESHOLDS = {
    "counter_rel_tolerance": 0.02,
    "max_wall_ratio": 3.0,
    "require_digest_match": False,
    # Minimum batch-engine speedup over serial (snapshot duration key
    # ``batch_speedup_vs_serial``); 0 disables the check.  The 10k-device
    # baseline (BENCH_baseline_10k.json) sets this to 20.
    "min_batch_speedup": 0.0,
}

#: Duration keys the gate tracks (others are informational).  Keys
#: suffixed ``_degraded`` — sharded runs whose shards fell back to
#: inline execution — are deliberately absent: degraded throughput is
#: recorded but never gated as if it were a parallel measurement.
_TRACKED_DURATIONS = ("serial_wall_s", "batch_wall_s", "sweep_wall_s")


def compare(baseline: dict, snapshot: dict) -> list[str]:
    """Every regression found, as human-readable messages."""
    problems: list[str] = []
    thresholds = {**DEFAULT_THRESHOLDS,
                  **baseline.get("thresholds", {})}

    if baseline.get("scenario") != snapshot.get("scenario"):
        problems.append(
            f"scenario mismatch: baseline {baseline.get('scenario')} "
            f"vs snapshot {snapshot.get('scenario')} — the gate only "
            "compares identical scenarios"
        )
        return problems

    if not snapshot.get("all_records_identical", False):
        problems.append(
            "sharded records/metrics diverged from serial in the "
            "snapshot run (all_records_identical is false)"
        )

    tolerance = thresholds["counter_rel_tolerance"]
    base_counters = baseline.get("counters", {})
    snap_counters = snapshot.get("counters", {})
    for key, base_value in sorted(base_counters.items()):
        if key not in snap_counters:
            problems.append(f"counter disappeared: {key} "
                            f"(baseline {base_value})")
            continue
        value = snap_counters[key]
        allowed = max(1.0, abs(base_value) * tolerance)
        if abs(value - base_value) > allowed:
            drift = (value - base_value) / base_value if base_value else (
                float("inf"))
            problems.append(
                f"counter drift: {key} {base_value} -> {value} "
                f"({drift:+.1%}, tolerance {tolerance:.1%})"
            )
    for key in sorted(set(snap_counters) - set(base_counters)):
        problems.append(
            f"new counter not in baseline: {key} = {snap_counters[key]} "
            "(refresh BENCH_baseline.json if intentional)"
        )

    max_ratio = thresholds["max_wall_ratio"]
    base_durations = baseline.get("durations", {})
    snap_durations = snapshot.get("durations", {})
    for key in _TRACKED_DURATIONS:
        base_value = base_durations.get(key)
        value = snap_durations.get(key)
        if base_value is None or value is None:
            continue
        if value > base_value * max_ratio:
            problems.append(
                f"duration regression: {key} {base_value:.2f}s -> "
                f"{value:.2f}s (> {max_ratio:.1f}x baseline)"
            )

    min_speedup = thresholds.get("min_batch_speedup", 0.0)
    if min_speedup:
        speedup = snap_durations.get("batch_speedup_vs_serial")
        if speedup is None:
            problems.append(
                "baseline requires min_batch_speedup "
                f"{min_speedup:.0f}x but the snapshot has no "
                "batch_speedup_vs_serial duration (run the bench with "
                "--engine batch)"
            )
        elif speedup < min_speedup:
            problems.append(
                f"batch throughput regression: speedup vs serial "
                f"{speedup:.1f}x < required {min_speedup:.0f}x"
            )

    if thresholds["require_digest_match"]:
        if baseline.get("record_digest") != snapshot.get("record_digest"):
            problems.append(
                f"record digest changed: "
                f"{baseline.get('record_digest', '')[:12]} -> "
                f"{snapshot.get('record_digest', '')[:12]}"
            )
    return problems


def make_baseline(snapshot: dict,
                  thresholds: dict | None = None) -> dict:
    """A committed-baseline document from a fresh snapshot."""
    return {
        "benchmark": "perf_gate_baseline",
        "scenario": snapshot["scenario"],
        "record_digest": snapshot["record_digest"],
        "counters": snapshot["counters"],
        "gauges": snapshot.get("gauges", {}),
        "durations": snapshot["durations"],
        "thresholds": {**DEFAULT_THRESHOLDS, **(thresholds or {})},
        "environment": snapshot.get("environment", {}),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_baseline.json"))
    parser.add_argument("--snapshot", type=Path, required=True)
    parser.add_argument("--write-baseline", type=Path, default=None,
                        metavar="PATH",
                        help="bless the snapshot: write it as the new "
                             "baseline to PATH and exit (no gating)")
    parser.add_argument("--override", action="store_true",
                        help="report regressions but exit 0 (same as "
                             "PERF_GATE_OVERRIDE=1; for intentional "
                             "changes that also refresh the baseline)")
    args = parser.parse_args(argv)

    try:
        snapshot = json.loads(args.snapshot.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf-gate: cannot read snapshot: {exc}",
              file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        document = make_baseline(snapshot)
        args.write_baseline.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"perf-gate: baseline written to {args.write_baseline} "
              f"({len(document['counters'])} counters tracked)")
        return 0

    try:
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf-gate: cannot read baseline: {exc}",
              file=sys.stderr)
        return 2

    problems = compare(baseline, snapshot)
    override = args.override or bool(os.environ.get("PERF_GATE_OVERRIDE"))
    if not problems:
        print(f"perf-gate: OK — "
              f"{len(baseline.get('counters', {}))} counters within "
              "tolerance, durations within ratio")
        return 0
    for problem in problems:
        print(f"perf-gate: REGRESSION: {problem}", file=sys.stderr)
    if override:
        print("perf-gate: override active "
              "(perf-gate-override label / PERF_GATE_OVERRIDE) — "
              f"letting {len(problems)} regression(s) through; "
              "refresh BENCH_baseline.json in this change",
              file=sys.stderr)
        return 0
    print(f"perf-gate: FAILED with {len(problems)} regression(s); "
          "if intentional, apply the perf-gate-override label and "
          "refresh BENCH_baseline.json "
          "(tools/perf_gate.py --write-baseline)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
