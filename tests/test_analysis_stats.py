"""Tests for the Sec. 3.1 general-statistics analysis."""

import numpy as np
import pytest

from repro.analysis.stats import (
    compute_general_stats,
    duration_cdf,
    failures_per_phone,
    failures_per_phone_cdf,
    stage_fix_rate,
    stall_autofix_cdf,
    stall_autofix_durations,
)
from repro.dataset.store import Dataset


class TestGeneralStats:
    def test_headline_share_above_99_percent(self, vanilla_dataset):
        """Sec. 3.1: >99% of failures are the three headline types."""
        stats = compute_general_stats(vanilla_dataset)
        assert stats.headline_type_share > 0.97

    def test_prevalence_in_plausible_band(self, vanilla_dataset):
        """Sec. 3.1: ~23% across models, ~20% fleet-weighted."""
        stats = compute_general_stats(vanilla_dataset)
        assert 0.12 <= stats.prevalence <= 0.30

    def test_frequency_matches_sec31(self, vanilla_dataset):
        """Sec. 3.1: ~33 failures per device on average."""
        stats = compute_general_stats(vanilla_dataset)
        assert 22.0 <= stats.frequency <= 45.0

    def test_type_mix_matches_sec31(self, vanilla_dataset):
        """Sec. 3.1: means of roughly 16 / 14 / 3 per device."""
        stats = compute_general_stats(vanilla_dataset)
        by_type = stats.mean_per_device_by_type
        assert by_type["DATA_SETUP_ERROR"] > by_type["DATA_STALL"]
        assert by_type["DATA_STALL"] > by_type["OUT_OF_SERVICE"]

    def test_stall_dominates_duration(self, vanilla_dataset):
        """Sec. 3.1: Data_Stall accounts for the vast majority (94%)
        of total failure duration."""
        stats = compute_general_stats(vanilla_dataset)
        assert stats.duration_share_by_type["DATA_STALL"] > 0.70

    def test_stall_count_share_is_about_40_percent(self, vanilla_dataset):
        stats = compute_general_stats(vanilla_dataset)
        assert 0.30 <= stats.count_share_by_type["DATA_STALL"] <= 0.50

    def test_duration_distribution_is_skewed(self, vanilla_dataset):
        """Fig. 4: most failures are short, the max is enormous."""
        stats = compute_general_stats(vanilla_dataset)
        assert stats.median_duration_s < stats.mean_duration_s
        assert stats.max_duration_s > 50 * stats.mean_duration_s
        assert stats.fraction_under_30s > 0.60

    def test_most_devices_have_no_oos(self, vanilla_dataset):
        """Sec. 3.1: 95% of phones report no Out_of_Service events."""
        stats = compute_general_stats(vanilla_dataset)
        assert stats.fraction_devices_without_oos > 0.85

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            compute_general_stats(Dataset())


class TestDistributions:
    def test_failures_per_phone_includes_zeroes(self, vanilla_dataset):
        counts = failures_per_phone(vanilla_dataset)
        assert len(counts) == vanilla_dataset.n_devices
        assert counts[0] == 0  # Fig. 3: most phones see no failures

    def test_failures_per_phone_is_heavy_tailed(self, vanilla_dataset):
        counts = failures_per_phone(vanilla_dataset)
        assert counts[-1] > 30 * max(1.0, float(np.median(counts)))

    def test_cdfs_are_valid(self, vanilla_dataset):
        for xs, ps in (failures_per_phone_cdf(vanilla_dataset),
                       duration_cdf(vanilla_dataset),
                       stall_autofix_cdf(vanilla_dataset)):
            assert (np.diff(xs) >= 0).all()
            assert ps[-1] == pytest.approx(1.0)

    def test_autofix_durations_are_mostly_fast(self, vanilla_dataset):
        """Fig. 10: 60% of auto-fixed stalls clear within ~10 s (plus
        up to 5 s of probing-measurement error)."""
        durations = stall_autofix_durations(vanilla_dataset)
        assert len(durations) > 100
        within_15 = np.mean(durations <= 15.0)
        assert within_15 > 0.45


class TestStageFixRate:
    def test_stage1_is_effective_once_executed(self, vanilla_dataset):
        """Sec. 3.2: the lightweight first stage fixes most stalls it
        is tried on (75% in the paper)."""
        rate = stage_fix_rate(vanilla_dataset, stage=1)
        assert rate > 0.45

    def test_rate_requires_stage_data(self):
        with pytest.raises(ValueError):
            stage_fix_rate(Dataset(), stage=1)
