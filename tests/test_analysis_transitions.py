"""Tests for the Fig. 17 transition analysis."""

import numpy as np

from repro.analysis.transitions import (
    FIG17_PANELS,
    all_transition_matrices,
    measured_level_risk,
    transition_increase_matrix,
    undesirable_cells,
)


class TestTransitionMatrices:
    def test_fig17f_level0_targets_are_dark(self, vanilla_dataset):
        """Fig. 17f: 4G level-1..4 -> 5G level-0 sharply increases the
        failure likelihood (the paper's anchor cell is +0.37)."""
        matrix = transition_increase_matrix(vanilla_dataset, "4G", "5G")
        dark = [matrix.increase[i][0] for i in (2, 3, 4)
                if not np.isnan(matrix.increase[i][0])]
        assert dark, "no observed 4G->5G level-0 transitions"
        assert all(v > 0.20 for v in dark)
        anchor = matrix.increase[4][0]
        if not np.isnan(anchor):
            assert 0.25 <= anchor <= 0.65  # paper: 0.37

    def test_healthy_targets_are_light(self, vanilla_dataset):
        matrix = transition_increase_matrix(vanilla_dataset, "4G", "5G")
        healthy = [matrix.increase[i][4] for i in range(6)
                   if not np.isnan(matrix.increase[i][4])]
        assert healthy
        assert all(v < 0.20 for v in healthy)

    def test_samples_are_counted(self, vanilla_dataset):
        matrix = transition_increase_matrix(vanilla_dataset, "4G", "5G")
        assert matrix.samples.sum() > 100

    def test_all_six_panels_compute(self, vanilla_dataset):
        matrices = all_transition_matrices(vanilla_dataset)
        assert set(matrices) == set(FIG17_PANELS)
        for matrix in matrices.values():
            assert matrix.increase.shape == (6, 6)

    def test_undesirable_cells_target_level0(self, vanilla_dataset):
        """The common pattern of Sec. 4.2: the *worst* transitions all
        land on level-0 signal — the paper's four vetoable cases."""
        matrix = transition_increase_matrix(vanilla_dataset, "4G", "5G")
        cells = undesirable_cells(matrix, threshold=0.15)
        assert len(cells) >= 4
        worst_four_targets = {j for _i, j, _v in cells[:4]}
        assert worst_four_targets == {0}


class TestMeasuredLevelRisk:
    def test_5g_level0_risk_is_highest_in_row(self, vanilla_dataset):
        risk = measured_level_risk(vanilla_dataset)
        row = risk["5G"]
        observed = [v for v in row if not np.isnan(v)]
        assert observed
        assert not np.isnan(row[0])
        assert row[0] == max(observed)

    def test_risk_values_are_probabilities(self, vanilla_dataset):
        for row in measured_level_risk(vanilla_dataset).values():
            for value in row:
                if not np.isnan(value):
                    assert 0.0 <= value <= 1.0
