"""Tests for the live query plane (protocol, engine, plane, service).

The load-bearing property is *exactness*: a live query answer must be
byte-identical (as sorted JSON) to the offline analysis block computed
over the same records — even though devices span segments and the
fold caches per-segment partials.  Everything else (shedding,
timeouts, cache invalidation) protects that property under load and
damage.
"""

import json
import socket
import threading
import time

import pytest

from repro.analysis.columnar import (
    analysis_summary,
    compute_analysis_block,
)
from repro.dataset.records import record_identity
from repro.monitoring.uploader import UploadBatcher
from repro.obs import ThreadSafeRegistry, use_registry
from repro.serve import (
    IngestService,
    QueryClient,
    ServeConfig,
    SocketTransport,
    protocol,
)
from repro.serve.harness import synthetic_records
from repro.serve.query import (
    ISP_BS_FIELDS,
    QueryEngine,
    QueryPlane,
    STATS_FIELDS,
    TRANSITIONS_FIELDS,
)
from repro.store import SegmentStore


def canonical(block) -> str:
    return json.dumps(block, sort_keys=True)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def pair():
    left, right = socket.socketpair()
    left.settimeout(2.0)
    right.settimeout(2.0)
    return left, right


def store_with_records(tmp_path, records, seal_records=5):
    """A store holding ``records`` across several sealed segments."""
    store = SegmentStore(tmp_path / "store", seal_records=seal_records)
    for record in records:
        store.append(record, key=record_identity(record))
    return store


def mixed_records(n_devices=6, per_device=5):
    """Synthetic records with some OUT_OF_SERVICE failures mixed in,
    so the distinct-device OOS counter is non-trivial."""
    records = synthetic_records(n_devices, per_device)
    for index, record in enumerate(records):
        if index % 4 == 0:
            record["failure_type"] = "OUT_OF_SERVICE"
    return records


class TestQueryProtocol:
    def test_query_frame_round_trips(self):
        client, server = pair()
        try:
            protocol.write_query(client, "stats")
            assert protocol.read_frame(server) == ("query", "stats", {})
        finally:
            client.close()
            server.close()

    def test_query_options_round_trip(self):
        client, server = pair()
        try:
            protocol.write_query(client, "summary", {"window": 60})
            frame = protocol.read_frame(server)
            assert frame == ("query", "summary", {"window": 60})
        finally:
            client.close()
            server.close()

    def test_ingest_frames_pass_through_read_frame(self):
        client, server = pair()
        try:
            protocol.write_request(client, b"payload", sender=9)
            assert protocol.read_frame(server) == (
                "ingest", 9, b"payload"
            )
        finally:
            client.close()
            server.close()

    def test_interleaved_frames_stay_delimited(self):
        client, server = pair()
        try:
            protocol.write_request(client, b"one", sender=1)
            protocol.write_query(client, "isp_bs")
            protocol.write_request(client, b"two", sender=2)
            assert protocol.read_frame(server)[0] == "ingest"
            assert protocol.read_frame(server) == (
                "query", "isp_bs", {}
            )
            assert protocol.read_frame(server)[2] == b"two"
        finally:
            client.close()
            server.close()

    def test_unknown_query_version_is_rejected(self):
        client, server = pair()
        try:
            client.sendall(protocol.QUERY_MAGIC + bytes([2]))
            with pytest.raises(
                protocol.UnsupportedQueryVersion
            ) as excinfo:
                protocol.read_frame(server)
            assert excinfo.value.version == 2
        finally:
            client.close()
            server.close()

    def test_unknown_query_kind_is_a_client_side_error(self):
        client, server = pair()
        try:
            with pytest.raises(ValueError):
                protocol.write_query(client, "bogus")
        finally:
            client.close()
            server.close()

    def test_result_round_trips(self):
        client, server = pair()
        try:
            protocol.write_result(server, protocol.RESULT_OK,
                                  {"answer": [1, 2]})
            assert protocol.read_result(client) == (
                protocol.RESULT_OK, {"answer": [1, 2]}
            )
            protocol.write_result(server, protocol.RESULT_RETRY,
                                  {"retry_after_s": 2.0})
            status, body = protocol.read_result(client)
            assert status == protocol.RESULT_RETRY
            assert body["retry_after_s"] == 2.0
        finally:
            client.close()
            server.close()

    def test_frame_limit_above_magic_is_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(max_frame_bytes=protocol.MAX_FRAME_LIMIT + 1)


class TestEngineExactness:
    """The fold must be byte-identical to the offline analysis."""

    def test_store_fold_matches_offline_block(self, tmp_path):
        records = mixed_records()
        store = store_with_records(tmp_path, records)
        assert store.n_segments > 1  # devices genuinely span segments

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        fold = engine.fold()
        offline = compute_analysis_block(store.dataset())
        assert canonical(fold.block) == canonical(offline)
        assert fold.watermark["mode"] == "store"
        assert fold.watermark["n_records"] == len(records)
        # Sanity: the distinct-device fields are actually exercised.
        assert offline["oos_devices"] > 0
        assert offline["failing_devices"] > 0

    def test_second_fold_hits_the_cache(self, tmp_path):
        store = store_with_records(tmp_path, mixed_records())

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        first = engine.fold()
        assert first.cache_hits == 0
        assert first.cache_misses == store.n_segments
        second = engine.fold()
        assert second.cache_hits == store.n_segments
        assert second.cache_misses == 0
        assert canonical(first.block) == canonical(second.block)

    def test_fold_stays_exact_as_the_store_grows(self, tmp_path):
        records = mixed_records()
        store = SegmentStore(tmp_path / "store", seal_records=4)

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        for index, record in enumerate(records):
            store.append(record, key=record_identity(record))
            if index % 7 == 0:
                fold = engine.fold()
                offline = compute_analysis_block(store.dataset())
                assert canonical(fold.block) == canonical(offline)
        fold = engine.fold()
        assert canonical(fold.block) == canonical(
            compute_analysis_block(store.dataset())
        )

    def test_memory_fold_matches_offline_block(self):
        from repro.backend.ingest import IngestionServer

        server = IngestionServer()
        for record in mixed_records():
            server.ingest_record(dict(record))
        engine = QueryEngine(server)
        fold = engine.fold()
        from repro.dataset.store import Dataset

        offline = compute_analysis_block(
            Dataset(failures=list(server.records))
        )
        assert canonical(fold.block) == canonical(offline)
        assert fold.watermark["mode"] == "memory"

    def test_summary_answer_matches_offline_summary(self, tmp_path):
        store = store_with_records(tmp_path, mixed_records())

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        envelope = engine.answer("summary")
        offline = analysis_summary(
            compute_analysis_block(store.dataset())
        )
        assert canonical(envelope["result"]) == canonical(offline)


class TestCacheInvalidation:
    def test_corrupt_segment_is_skipped_with_accounting(self, tmp_path):
        registry = ThreadSafeRegistry()
        store = store_with_records(tmp_path, mixed_records())
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        with use_registry(registry):
            fold = engine.fold()
        assert len(fold.skipped) == 1
        # The answer is still exact over the *readable* records.
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            "query_segments_skipped_total"] == 1

    def test_scrub_quarantine_invalidates_cached_partials(
        self, tmp_path
    ):
        registry = ThreadSafeRegistry()
        store = store_with_records(tmp_path, mixed_records())

        class FakeServer:
            pass

        server = FakeServer()
        server.store = store
        engine = QueryEngine(server)
        first = engine.fold()  # populate the cache
        assert first.cache_misses == store.n_segments
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        report = store.scrub(repair=True)
        assert len(report.quarantined) == 1
        assert report.recovered_keys  # WAL had every damaged row
        # A fresh append joins the recovered rows in the tail, so the
        # re-sealed segment cannot reuse the quarantined digest.
        extra = synthetic_records(1, 1, seed=777)[0]
        store.append(extra, key=record_identity(extra))
        store.flush()  # reseal the repaired rows
        with use_registry(registry):
            fold = engine.fold()
        # The quarantined segment's digest left the live set, so its
        # cached partial was evicted with accounting...
        assert engine.cache.invalidations >= 1
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            "query_cache_invalidations_total"] >= 1
        # ...and the repaired store still folds to the exact offline
        # block: nothing was lost, nothing double-counted.
        assert canonical(fold.block) == canonical(
            compute_analysis_block(store.dataset())
        )
        assert not fold.skipped


class BlockingEngine:
    """Engine stub whose answers gate on an event (plane tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def answer(self, kind):
        self.entered.set()
        self.release.wait(timeout=10.0)
        return {"query": kind, "result": {}}


class TestQueryPlane:
    def test_full_queue_sheds_with_accounting(self):
        registry = ThreadSafeRegistry()
        engine = BlockingEngine()
        plane = QueryPlane(engine, capacity=2, timeout_s=5.0)
        with use_registry(registry):
            plane.start()
            try:
                first = plane.submit("stats")
                assert first is not None
                assert engine.entered.wait(timeout=5.0)
                # The worker holds the first; two more fill the queue.
                assert plane.submit("stats") is not None
                assert plane.submit("stats") is not None
                assert plane.submit("stats") is None  # shed
                assert plane.shed == 1
            finally:
                engine.release.set()
                plane.stop()
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            'query_shed_total{reason="queue-full"}'] == 1
        assert snapshot["counters"][
            'query_requests_total{kind="stats"}'] == 3

    def test_slow_fold_times_out_with_retry_signal(self):
        registry = ThreadSafeRegistry()
        engine = BlockingEngine()
        plane = QueryPlane(engine, capacity=4, timeout_s=0.05,
                           retry_after_s=2.5)
        with use_registry(registry):
            plane.start()
            try:
                ticket = plane.submit("summary")
                status, body = plane.wait(ticket)
                assert status == protocol.RESULT_RETRY
                assert body["retry_after_s"] == 2.5
                assert ticket.abandoned
            finally:
                engine.release.set()
                plane.stop()
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            'query_shed_total{reason="timeout"}'] == 1

    def test_engine_fault_answers_result_error(self):
        class FaultyEngine:
            def answer(self, kind):
                raise RuntimeError("fold exploded")

        registry = ThreadSafeRegistry()
        plane = QueryPlane(FaultyEngine(), capacity=4, timeout_s=5.0)
        with use_registry(registry):
            plane.start()
            try:
                ticket = plane.submit("stats")
                status, body = plane.wait(ticket)
            finally:
                plane.stop()
        assert status == protocol.RESULT_ERROR
        assert "fold exploded" in body["error"]
        assert plane.errors == 1
        snapshot = registry.snapshot()
        assert snapshot["counters"]["query_errors_total"] == 1


class TestServiceQueries:
    """End-to-end over real sockets, ingest and queries interleaved."""

    def _ingest(self, service, records):
        batcher = UploadBatcher(
            transport=SocketTransport(*service.address, sender=1)
        )
        for record in records:
            batcher.enqueue(record)
        batcher.maybe_flush(True)
        return batcher

    def test_live_answers_match_offline_analysis(self, tmp_path):
        records = mixed_records()
        config = ServeConfig(store_dir=str(tmp_path / "store"),
                             store_seal_records=5)
        registry = ThreadSafeRegistry()
        with use_registry(registry):
            service = IngestService(config=config).start()
            try:
                batcher = self._ingest(service, records)
                assert wait_until(
                    lambda: service.server.accepted == len(records)
                )
                offline = compute_analysis_block(
                    service.server.store.dataset()
                )
                with QueryClient(*service.address) as client:
                    stats = client.stats()
                    isp_bs = client.isp_bs()
                    transitions = client.transitions()
                    summary = client.summary()
                batcher.transport.close()
            finally:
                service.stop(drain=False)
        assert canonical(stats["result"]) == canonical(
            {key: offline[key] for key in STATS_FIELDS}
        )
        assert canonical(isp_bs["result"]) == canonical(
            {key: offline[key] for key in ISP_BS_FIELDS}
        )
        assert canonical(transitions["result"]) == canonical(
            {key: offline[key] for key in TRANSITIONS_FIELDS}
        )
        assert canonical(summary["result"]) == canonical(
            analysis_summary(offline)
        )
        assert stats["watermark"]["n_records"] == len(records)

    def test_repeated_queries_hit_the_cache(self, tmp_path):
        records = mixed_records()
        config = ServeConfig(store_dir=str(tmp_path / "store"),
                             store_seal_records=5)
        registry = ThreadSafeRegistry()
        with use_registry(registry):
            service = IngestService(config=config).start()
            try:
                batcher = self._ingest(service, records)
                assert wait_until(
                    lambda: service.server.accepted == len(records)
                )
                with QueryClient(*service.address) as client:
                    first = client.stats()
                    second = client.stats()
                batcher.transport.close()
            finally:
                service.stop(drain=False)
        assert first["cache"]["misses"] > 0
        assert second["cache"]["hits"] == first["cache"]["misses"]
        assert second["cache"]["misses"] == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"]["query_cache_hits_total"] > 0

    def test_queries_answer_while_ingest_continues(self, tmp_path):
        """A query must not wait for ingest to go idle: with the
        ingest worker wedged mid-payload, answers still flow and the
        watermark advances once ingest resumes."""
        records = mixed_records(n_devices=4, per_device=3)
        config = ServeConfig(store_dir=str(tmp_path / "store"),
                             store_seal_records=4)
        with use_registry(ThreadSafeRegistry()):
            service = IngestService(config=config).start()
            try:
                first_half = records[:6]
                batcher = self._ingest(service, first_half)
                assert wait_until(
                    lambda: service.server.accepted == 6
                )
                entered = threading.Event()
                release = threading.Event()
                real = service.server.receive

                def gated(payload):
                    entered.set()
                    release.wait(timeout=10.0)
                    real(payload)

                service.server.receive = gated
                try:
                    batcher2 = self._ingest(service, records[6:])
                    assert entered.wait(timeout=5.0)
                    with QueryClient(*service.address) as client:
                        mid = client.stats()
                finally:
                    release.set()
                    service.server.receive = real
                assert mid["watermark"]["n_records"] == 6
                assert wait_until(
                    lambda: service.server.accepted == len(records)
                )
                with QueryClient(*service.address) as client:
                    final = client.stats()
                offline = compute_analysis_block(
                    service.server.store.dataset()
                )
                batcher.transport.close()
                batcher2.transport.close()
            finally:
                service.stop(drain=False)
        assert final["watermark"]["n_records"] == len(records)
        assert canonical(final["result"]) == canonical(
            {key: offline[key] for key in STATS_FIELDS}
        )

    def test_draining_service_answers_unavailable(self):
        registry = ThreadSafeRegistry()
        with use_registry(registry):
            service = IngestService().start()
            try:
                # Connect while the service still accepts, then flip
                # it into drain: the handler is already blocked in its
                # frame read, so the query reaches the unavailable
                # branch instead of a closed socket.
                sock = socket.create_connection(service.address,
                                                timeout=2.0)
                sock.settimeout(2.0)
                assert wait_until(
                    lambda: service.connections_accepted == 1
                )
                service._draining.set()
                try:
                    protocol.write_query(sock, "stats")
                    status, _body = protocol.read_result(sock)
                finally:
                    sock.close()
            finally:
                service._draining.clear()
                service.stop(drain=False)
        assert status == protocol.RESULT_UNAVAILABLE
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            'query_unavailable_total{reason="draining"}'] == 1
