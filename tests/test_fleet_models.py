"""Unit tests for the phone-model population calibration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import quantities
from repro.fleet.models import (
    FIVE_G_RATS,
    NON_5G_RATS,
    PHONE_MODELS,
    PHONE_MODELS_BY_ID,
    fit_negative_binomial,
    fit_negative_binomial_mixture,
)
from repro.radio.rat import RAT


class TestNegativeBinomialFit:
    def test_moments_are_matched(self):
        fit = fit_negative_binomial(prevalence=0.28, frequency=35.9)
        assert abs(fit.mean - 35.9) < 1e-6
        assert abs(fit.p_zero - (1 - 0.28)) < 1e-6

    def test_extreme_row_8(self):
        """Model 8: 0.15% prevalence with 2.3 mean — extreme dispersion."""
        fit = fit_negative_binomial(prevalence=0.0015, frequency=2.3)
        assert abs(fit.p_zero - 0.9985) < 1e-6
        assert fit.scale > 100  # massively over-dispersed

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            fit_negative_binomial(prevalence=0.0, frequency=1.0)
        with pytest.raises(ValueError):
            fit_negative_binomial(prevalence=0.5, frequency=0.0)

    def test_inconsistent_moments_rejected(self):
        # P(N>=1)=0.9 forces mean >= 2.3; frequency 1.0 is impossible.
        with pytest.raises(ValueError):
            fit_negative_binomial(prevalence=0.9, frequency=1.0)

    @settings(max_examples=60)
    @given(
        prevalence=st.floats(min_value=0.01, max_value=0.6),
        frequency=st.floats(min_value=5.0, max_value=100.0),
    )
    def test_fit_roundtrip_property(self, prevalence, frequency):
        fit = fit_negative_binomial(prevalence, frequency)
        assert abs(fit.mean - frequency) < 1e-5
        assert abs(fit.p_zero - (1 - prevalence)) < 1e-5


class TestMixtureFit:
    FACTORS = ((1.0, 0.55), (1.35, 0.20), (0.73, 0.25))

    def test_mixture_p_zero_matches(self):
        fit = fit_negative_binomial_mixture(0.28, 35.9, self.FACTORS)
        p_zero = sum(
            w * (1.0 + fit.scale) ** (-c * fit.shape)
            for c, w in self.FACTORS
        )
        assert abs(p_zero - 0.72) < 1e-6

    def test_mixture_mean_matches(self):
        fit = fit_negative_binomial_mixture(0.28, 35.9, self.FACTORS)
        mean_factor = sum(c * w for c, w in self.FACTORS)
        assert abs(fit.mean * mean_factor - 35.9) < 0.2

    def test_unbalanced_factors_rejected(self):
        with pytest.raises(ValueError):
            fit_negative_binomial_mixture(
                0.2, 10.0, ((2.0, 0.5), (2.0, 0.5))
            )


class TestPhoneModelSpecs:
    def test_all_34_models_fitted(self):
        assert len(PHONE_MODELS) == 34

    def test_lookup_by_id(self):
        assert PHONE_MODELS_BY_ID[23].has_5g

    def test_rat_support_by_capability(self):
        for spec in PHONE_MODELS:
            expected = FIVE_G_RATS if spec.has_5g else NON_5G_RATS
            assert spec.supported_rats == expected

    def test_5g_models_include_nr(self):
        assert RAT.NR in PHONE_MODELS_BY_ID[33].supported_rats
        assert RAT.NR not in PHONE_MODELS_BY_ID[1].supported_rats

    def test_sampled_hazards_reproduce_the_mean(self):
        spec = PHONE_MODELS_BY_ID[10]
        rng = random.Random(0)
        hazards = [spec.sample_hazard(rng) for _ in range(30_000)]
        mean = sum(hazards) / len(hazards)
        assert abs(mean - spec.row.frequency) / spec.row.frequency < 0.1

    def test_isp_factor_scales_hazard_mean(self):
        spec = PHONE_MODELS_BY_ID[10]
        rng = random.Random(0)
        boosted = [spec.sample_hazard(rng, isp_factor=1.35)
                   for _ in range(30_000)]
        mean = sum(boosted) / len(boosted)
        assert mean > spec.row.frequency * 1.1

    def test_specs_mirror_table1(self):
        for spec, row in zip(PHONE_MODELS, quantities.TABLE1):
            assert spec.model == row.model
            assert spec.android_version == row.android_version
            assert spec.user_share == row.user_share
