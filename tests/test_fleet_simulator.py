"""Tests for the fleet simulator and scenario presets."""

import pytest

from repro.dataset.records import ARM_PATCHED, ARM_VANILLA
from repro.fleet.scenario import (
    ScenarioConfig,
    default_scenario,
    full_scenario,
    smoke_scenario,
)
from repro.fleet.simulator import FleetSimulator, _poisson
from repro.network.topology import TopologyConfig
import random


class TestScenarioConfig:
    def test_presets_scale_up(self):
        assert (smoke_scenario().n_devices < default_scenario().n_devices
                < full_scenario().n_devices)

    def test_patched_flips_only_the_arm(self):
        base = smoke_scenario()
        patched = base.patched()
        assert patched.arm == ARM_PATCHED
        assert patched.n_devices == base.n_devices
        assert patched.seed == base.seed
        assert base.vanilla().arm == ARM_VANILLA

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_devices=0)
        with pytest.raises(ValueError):
            ScenarioConfig(arm="experimental")
        with pytest.raises(ValueError):
            ScenarioConfig(frequency_scale=0.0)


class TestPoissonHelper:
    def test_zero_mean(self):
        assert _poisson(random.Random(0), 0.0) == 0

    def test_small_mean_distribution(self):
        rng = random.Random(1)
        draws = [_poisson(rng, 3.0) for _ in range(20_000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 3.0) < 0.1

    def test_large_mean_normal_approximation(self):
        rng = random.Random(2)
        draws = [_poisson(rng, 1_000.0) for _ in range(2_000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 1_000.0) < 10.0
        assert all(d >= 0 for d in draws)


class TestSimulatedDatasets:
    def test_every_device_has_a_record(self, vanilla_dataset):
        assert vanilla_dataset.n_devices == 1_500
        ids = {d.device_id for d in vanilla_dataset.devices}
        assert len(ids) == 1_500

    def test_bs_inventory_is_included(self, vanilla_dataset):
        assert len(vanilla_dataset.base_stations) == 1_000

    def test_failures_reference_known_devices(self, vanilla_dataset):
        ids = {d.device_id for d in vanilla_dataset.devices}
        assert all(f.device_id in ids for f in vanilla_dataset.failures)

    def test_failures_reference_known_bses(self, vanilla_dataset):
        bs_ids = {bs.bs_id for bs in vanilla_dataset.base_stations}
        assert all(f.bs_id in bs_ids for f in vanilla_dataset.failures)

    def test_all_durations_non_negative(self, vanilla_dataset):
        assert all(f.duration_s >= 0 for f in vanilla_dataset.failures)

    def test_metadata_describes_the_run(self, vanilla_dataset):
        assert vanilla_dataset.metadata["arm"] == ARM_VANILLA
        assert vanilla_dataset.metadata["n_devices"] == 1_500

    def test_arms_are_stamped_on_records(self, vanilla_dataset,
                                          patched_dataset):
        assert all(f.arm == ARM_VANILLA
                   for f in vanilla_dataset.failures[:500])
        assert all(f.arm == ARM_PATCHED
                   for f in patched_dataset.failures[:500])

    def test_pairing_devices_match_across_arms(self, vanilla_dataset,
                                               patched_dataset):
        """Common random numbers: both arms see identical populations."""
        vanilla_models = {(d.device_id, d.model, d.isp)
                          for d in vanilla_dataset.devices}
        patched_models = {(d.device_id, d.model, d.isp)
                          for d in patched_dataset.devices}
        assert vanilla_models == patched_models

    def test_patched_arm_has_fewer_failures(self, vanilla_dataset,
                                            patched_dataset):
        assert patched_dataset.n_failures < vanilla_dataset.n_failures

    def test_5g_rat_only_on_5g_devices(self, vanilla_dataset):
        caps = {d.device_id: d.has_5g for d in vanilla_dataset.devices}
        for failure in vanilla_dataset.failures:
            if failure.rat == "5G":
                assert caps[failure.device_id]

    def test_error_codes_only_on_setup_and_sms(self, vanilla_dataset):
        for failure in vanilla_dataset.failures:
            if failure.failure_type in ("DATA_STALL", "OUT_OF_SERVICE"):
                assert failure.error_code is None

    def test_transitions_recorded_for_both_arms(self, vanilla_dataset,
                                                patched_dataset):
        assert vanilla_dataset.transitions
        assert patched_dataset.transitions

    def test_patched_arm_vetoes_transitions(self, vanilla_dataset,
                                            patched_dataset):
        """The stability policy declines moves the blind policy takes."""
        def executed_share(dataset):
            executed = sum(t.executed for t in dataset.transitions)
            return executed / len(dataset.transitions)

        assert (executed_share(patched_dataset)
                < executed_share(vanilla_dataset))

    def test_determinism(self):
        config = ScenarioConfig(
            n_devices=50, seed=99,
            topology=TopologyConfig(n_base_stations=200, seed=98),
        )
        a = FleetSimulator(config).run()
        b = FleetSimulator(config).run()
        assert a.n_failures == b.n_failures
        assert a.failures[:20] == b.failures[:20]
