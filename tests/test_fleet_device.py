"""Unit tests for per-device episode realization."""

import random

import pytest

from repro.android.rat_policy import (
    Android10BlindPolicy,
    StabilityCompatiblePolicy,
)
from repro.android.recovery import (
    TIMP_RECOVERY_POLICY,
    VANILLA_RECOVERY_POLICY,
)
from repro.core.events import FailureType
from repro.core.signal import SignalLevel
from repro.fleet import behavior
from repro.fleet.device import ScriptedBearer, SimulatedDevice
from repro.fleet.models import PHONE_MODELS_BY_ID
from repro.netstack.faults import FaultKind
from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP
from repro.network.topology import NationalTopology, TopologyConfig
from repro.radio.rat import RAT

TOPOLOGY = NationalTopology(TopologyConfig(n_base_stations=300, seed=2))


def make_device(model=10, patched=False, seed=0) -> SimulatedDevice:
    spec = PHONE_MODELS_BY_ID[model]
    return SimulatedDevice(
        device_id=1,
        spec=spec,
        isp=ISP.A,
        arm="patched" if patched else "vanilla",
        rat_policy=(StabilityCompatiblePolicy() if patched
                    else Android10BlindPolicy()),
        recovery_policy=(TIMP_RECOVERY_POLICY if patched
                         else VANILLA_RECOVERY_POLICY),
        rng=random.Random(seed),
        use_endc=patched and spec.has_5g,
    )


def make_context(rat=RAT.LTE, level=3) -> behavior.EventContext:
    rng = random.Random(1)
    bs = TOPOLOGY.sample_bs(rng, ISP.A, DeploymentClass.URBAN, rat)
    return behavior.EventContext(
        rat=rat, signal_level=SignalLevel(level),
        deployment=DeploymentClass.URBAN, bs=bs,
    )


class TestScriptedBearer:
    def test_script_then_admit(self):
        context = make_context()
        bearer = ScriptedBearer(context.bs, ["SIGNAL_LOST"])
        rng = random.Random(0)
        assert bearer.admit_bearer(RAT.LTE, SignalLevel.LEVEL_3,
                                   rng) == "SIGNAL_LOST"
        assert bearer.admit_bearer(RAT.LTE, SignalLevel.LEVEL_3,
                                   rng) is None

    def test_organic_fallthrough_option(self):
        context = make_context()
        bearer = ScriptedBearer(context.bs, [],
                                organic_after_script=True)
        outcomes = {
            bearer.admit_bearer(RAT.LTE, SignalLevel.LEVEL_3,
                                random.Random(s))
            for s in range(200)
        }
        assert None in outcomes  # the real BS admits most attempts

    def test_exposes_bs_identity(self):
        context = make_context()
        bearer = ScriptedBearer(context.bs, [])
        assert bearer.bs_id == context.bs.bs_id
        assert bearer.supports(RAT.LTE)


class TestSetupErrorRealization:
    def test_produces_one_record_with_the_cause(self):
        device = make_device()
        device.realize_setup_error(make_context(), "PPP_TIMEOUT")
        assert len(device.records) == 1
        record = device.records[0]
        assert record.failure_type == "DATA_SETUP_ERROR"
        assert record.error_code == "PPP_TIMEOUT"
        assert record.rat == "4G"
        assert record.duration_s > 0

    def test_record_carries_episode_context(self):
        device = make_device()
        context = make_context(level=1)
        device.realize_setup_error(context, "SIGNAL_LOST")
        record = device.records[0]
        assert record.signal_level == 1
        assert record.bs_id == context.bs.bs_id
        assert record.deployment == "URBAN"
        assert record.model == 10

    def test_false_positive_setup_is_filtered(self):
        device = make_device()
        device.realize_false_positive_setup(
            make_context(), "INSUFFICIENT_RESOURCES"
        )
        assert not device.records
        assert device.monitor.filtered == 1


class TestStallRealization:
    def stall_component(self, recoverable=1.0):
        return behavior.StallComponent(
            weight=1.0, median_s=10.0, sigma=0.5,
            device_recoverable=recoverable,
        )

    def test_true_stall_is_recorded_with_duration(self):
        device = make_device()
        device.realize_stall(make_context(), 40.0,
                             self.stall_component(),
                             FaultKind.NETWORK_STALL)
        assert len(device.records) == 1
        record = device.records[0]
        assert record.failure_type == "DATA_STALL"
        # Duration within prober error of min(natural, recovery).
        assert 0.0 < record.duration_s <= 80.0

    def test_system_side_stall_is_filtered(self):
        device = make_device()
        device.realize_stall(make_context(), 40.0,
                             self.stall_component(),
                             FaultKind.FIREWALL_MISCONFIG)
        assert not device.records
        assert device.monitor.filtered == 1

    def test_dns_outage_stall_is_filtered(self):
        device = make_device()
        device.realize_stall(make_context(), 40.0,
                             self.stall_component(),
                             FaultKind.DNS_OUTAGE)
        assert not device.records

    def test_unrecoverable_stall_runs_its_course(self):
        device = make_device()
        device.realize_stall(make_context(), 500.0,
                             self.stall_component(recoverable=0.0),
                             FaultKind.NETWORK_STALL)
        record = device.records[0]
        assert record.duration_s >= 450.0  # user resets cannot fix it

    def test_fault_is_cleared_after_the_episode(self):
        device = make_device()
        device.realize_stall(make_context(), 40.0,
                             self.stall_component(),
                             FaultKind.NETWORK_STALL)
        assert device.stack.fault_at(device.clock.now()) is None


class TestOtherRealizations:
    def test_out_of_service_duration(self):
        device = make_device()
        device.realize_out_of_service(make_context(), 75.0)
        record = device.records[0]
        assert record.failure_type == "OUT_OF_SERVICE"
        assert record.duration_s == 75.0

    def test_legacy_sms_failure(self):
        device = make_device()
        device.realize_legacy_failure(make_context(),
                                      FailureType.SMS_FAILURE)
        record = device.records[0]
        assert record.failure_type == "SMS_FAILURE"
        assert record.error_code == "RIL_SMS_SEND_FAIL_RETRY"

    def test_post_transition_flag_propagates(self):
        device = make_device()
        device.realize_setup_error(make_context(), "IRAT_HANDOVER_FAILED",
                                   post_transition=True)
        assert device.records[0].post_transition


class TestTransitionDecisions:
    def scenario(self, nr_level=0):
        return behavior.TransitionScenario(
            current_rat=RAT.LTE,
            current_level=SignalLevel.LEVEL_3,
            candidates=((RAT.LTE, SignalLevel.LEVEL_3),
                        (RAT.NR, SignalLevel(nr_level))),
        )

    def test_blind_device_takes_weak_5g(self):
        device = make_device(model=33)
        current, selected, executed = device.decide_transition(
            self.scenario(nr_level=0)
        )
        assert executed
        assert selected.rat is RAT.NR

    def test_patched_device_vetoes_weak_5g(self):
        device = make_device(model=33, patched=True)
        current, selected, executed = device.decide_transition(
            self.scenario(nr_level=0)
        )
        assert not executed

    def test_patched_device_takes_healthy_5g(self):
        device = make_device(model=33, patched=True)
        current, selected, executed = device.decide_transition(
            self.scenario(nr_level=4)
        )
        assert executed
        assert selected.rat is RAT.NR

    def test_endc_lowers_procedure_failure_rate(self):
        patched = make_device(model=33, patched=True)
        vanilla = make_device(model=33)
        assert (patched.transition_procedure_failure_rate(RAT.NR)
                < vanilla.transition_procedure_failure_rate(RAT.NR))


class TestOverheadAccounting:
    def test_episodes_feed_the_accountant(self):
        device = make_device()
        device.realize_setup_error(make_context(), "PPP_TIMEOUT")
        device.realize_out_of_service(make_context(), 30.0)
        assert device.accountant.cpu_seconds > 0
        assert device.accountant.storage_bytes > 0
