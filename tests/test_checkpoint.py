"""Tests for durable checkpoints and resumable runs.

The contract: a run pointed at a checkpoint directory spools every
completed shard atomically; a resumed run reloads completed shards
(never re-simulating them) and finishes byte-identical to an
uninterrupted run; damaged artifacts are quarantined and re-run, and a
store from a different scenario is refused outright.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    make_shards,
    run_sharded,
    scenario_fingerprint,
    simulate_shard,
)
from repro.parallel.checkpoint import FORMAT_VERSION


def tiny_scenario(n_devices=24, seed=11, **kwargs) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=n_devices,
        seed=seed,
        topology=TopologyConfig(n_base_stations=120, seed=seed + 1),
        **kwargs,
    )


def digest(dataset) -> str:
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


class TestFingerprint:
    def test_stable_for_identical_scenarios(self):
        assert (scenario_fingerprint(tiny_scenario(), 4)
                == scenario_fingerprint(tiny_scenario(), 4))

    def test_sensitive_to_scenario_and_partition(self):
        base = scenario_fingerprint(tiny_scenario(seed=1), 4)
        assert scenario_fingerprint(tiny_scenario(seed=2), 4) != base
        assert scenario_fingerprint(tiny_scenario(seed=1), 5) != base
        assert (scenario_fingerprint(tiny_scenario(seed=1).patched(), 4)
                != base)


class TestStoreRoundtrip:
    def test_save_then_resume_returns_equal_result(self, tmp_path):
        scenario = tiny_scenario(n_devices=8)
        [spec] = make_shards(8, 1)
        result = simulate_shard(scenario, spec)
        fingerprint = scenario_fingerprint(scenario, 1)

        store = CheckpointStore(tmp_path, fingerprint, 1)
        store.initialize(resume=False, specs=[spec])
        store.save(result)

        reloaded = CheckpointStore(tmp_path, fingerprint, 1)
        loaded = reloaded.initialize(resume=True, specs=[spec])
        assert list(loaded) == [0]
        assert loaded[0].dataset.devices == result.dataset.devices
        assert loaded[0].dataset.failures == result.dataset.failures
        assert loaded[0].stats == result.stats

    def test_fresh_initialize_forgets_previous_manifest(self, tmp_path):
        scenario = tiny_scenario(n_devices=8)
        [spec] = make_shards(8, 1)
        fingerprint = scenario_fingerprint(scenario, 1)
        store = CheckpointStore(tmp_path, fingerprint, 1)
        store.initialize(resume=False, specs=[spec])
        store.save(simulate_shard(scenario, spec))

        fresh = CheckpointStore(tmp_path, fingerprint, 1)
        assert fresh.initialize(resume=False, specs=[spec]) == {}
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["shards"] == {}

    def test_resume_without_manifest_starts_fresh(self, tmp_path):
        scenario = tiny_scenario(n_devices=8)
        [spec] = make_shards(8, 1)
        store = CheckpointStore(tmp_path / "new",
                                scenario_fingerprint(scenario, 1), 1)
        assert store.initialize(resume=True, specs=[spec]) == {}

    def test_corrupt_manifest_raises_checkpoint_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        store = CheckpointStore(tmp_path, "abc", 1)
        with pytest.raises(CheckpointError, match="not valid JSON"):
            store.initialize(resume=True, specs=[])

    def test_future_format_version_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps(
            {"format": FORMAT_VERSION + 1, "fingerprint": "abc",
             "shards": {}}
        ))
        store = CheckpointStore(tmp_path, "abc", 1)
        with pytest.raises(CheckpointMismatchError):
            store.initialize(resume=True, specs=[])


class TestEngineCheckpointing:
    def test_resumed_run_is_byte_identical_and_skips_completed(
            self, tmp_path, monkeypatch):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        first = run_sharded(scenario, workers=2, n_shards=4,
                            checkpoint_dir=tmp_path)
        assert digest(first) == digest(serial)

        simulated = []

        import repro.parallel.engine as engine_module

        real = engine_module.simulate_shard

        def counting(config, spec):
            simulated.append(spec.index)
            return real(config, spec)

        monkeypatch.setattr("repro.parallel.engine.simulate_shard",
                            counting)
        resumed = run_sharded(scenario, workers=2, n_shards=4,
                              checkpoint_dir=tmp_path, resume=True)
        assert digest(resumed) == digest(serial)
        assert simulated == []  # nothing re-simulated
        execution = resumed.metadata["execution"]
        assert execution["resumed_shards"] == [0, 1, 2, 3]
        assert execution["checkpoint"]["dir"] == str(tmp_path)
        assert execution["checkpoint"]["quarantined"] == []

    def test_partial_checkpoint_resumes_only_missing_shards(
            self, tmp_path):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        run_sharded(scenario, workers=2, n_shards=4,
                    checkpoint_dir=tmp_path)
        # Lose two shards (as if the run had been killed mid-flight).
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for index in ("2", "3"):
            (tmp_path / "shards" / manifest["shards"][index]["file"]
             ).unlink()
            del manifest["shards"][index]
        manifest_path.write_text(json.dumps(manifest))

        resumed = run_sharded(scenario, workers=2, n_shards=4,
                              checkpoint_dir=tmp_path, resume=True)
        assert digest(resumed) == digest(serial)
        assert resumed.metadata["execution"]["resumed_shards"] == [0, 1]

    def test_truncated_artifact_quarantined_and_rerun(self, tmp_path):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        run_sharded(scenario, workers=2, n_shards=4,
                    checkpoint_dir=tmp_path)
        victim = tmp_path / "shards" / "shard-00001.pkl"
        blob = victim.read_bytes()
        victim.write_bytes(blob[:len(blob) // 2])

        resumed = run_sharded(scenario, workers=2, n_shards=4,
                              checkpoint_dir=tmp_path, resume=True)
        assert digest(resumed) == digest(serial)
        execution = resumed.metadata["execution"]
        assert execution["resumed_shards"] == [0, 2, 3]
        [quarantined] = execution["checkpoint"]["quarantined"]
        assert quarantined["shard"] == 1
        assert "digest mismatch" in quarantined["reason"]
        assert (tmp_path / "quarantine" / "shard-00001.pkl").exists()

    def test_bitflipped_artifact_quarantined_and_rerun(self, tmp_path):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        run_sharded(scenario, workers=2, n_shards=4,
                    checkpoint_dir=tmp_path)
        victim = tmp_path / "shards" / "shard-00002.pkl"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # one flipped byte in the payload
        victim.write_bytes(bytes(blob))

        resumed = run_sharded(scenario, workers=2, n_shards=4,
                              checkpoint_dir=tmp_path, resume=True)
        assert digest(resumed) == digest(serial)
        execution = resumed.metadata["execution"]
        assert execution["resumed_shards"] == [0, 1, 3]
        [quarantined] = execution["checkpoint"]["quarantined"]
        assert quarantined["shard"] == 2

    def test_fingerprint_mismatch_refused(self, tmp_path):
        run_sharded(tiny_scenario(seed=11), workers=2,
                    checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointMismatchError,
                           match="refusing to resume"):
            run_sharded(tiny_scenario(seed=12), workers=2,
                        checkpoint_dir=tmp_path, resume=True)

    def test_partition_mismatch_refused(self, tmp_path):
        run_sharded(tiny_scenario(), workers=2, n_shards=2,
                    checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointMismatchError):
            run_sharded(tiny_scenario(), workers=2, n_shards=3,
                        checkpoint_dir=tmp_path, resume=True)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint directory"):
            run_sharded(tiny_scenario(), workers=2, resume=True)
        with pytest.raises(ValueError, match="checkpoint directory"):
            FleetSimulator(tiny_scenario()).run(workers=2, resume=True)

    def test_inline_mode_checkpoints_too(self, tmp_path):
        scenario = tiny_scenario()
        run_sharded(scenario, workers=2, n_shards=4, mode="inline",
                    checkpoint_dir=tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert sorted(manifest["shards"]) == ["0", "1", "2", "3"]

    def test_checkpointed_serial_request_routes_through_engine(
            self, tmp_path):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        dataset = FleetSimulator(scenario).run(checkpoint_dir=tmp_path,
                                               n_shards=4)
        assert digest(dataset) == digest(serial)
        assert (tmp_path / "manifest.json").exists()


class TestKillAndResume:
    """The acceptance criterion: SIGKILL a checkpointed run mid-flight,
    resume it, and get the byte-identical dataset of a fresh run."""

    def test_sigkilled_run_resumes_byte_identical(self, tmp_path):
        devices, shards = 150, 8
        checkpoint_dir = tmp_path / "ckpt"
        out_resumed = tmp_path / "resumed.jsonl.gz"
        base_cmd = [
            sys.executable, "-m", "repro", "study",
            "--devices", str(devices), "--seed", "11",
            "--workers", "2", "--shards", str(shards),
            "--checkpoint-dir", str(checkpoint_dir),
        ]
        env = dict(os.environ, PYTHONPATH="src")

        victim = subprocess.Popen(
            base_cmd, env=env, cwd=Path(__file__).resolve().parents[1],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Kill as soon as the manifest records a completed shard.
        manifest_path = checkpoint_dir / "manifest.json"

        def completed_shards():
            try:
                return json.loads(manifest_path.read_text())["shards"]
            except (OSError, ValueError, KeyError):
                return {}

        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if completed_shards():
                break
            if victim.poll() is not None:
                break
            time.sleep(0.02)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        manifest = json.loads(
            (checkpoint_dir / "manifest.json").read_text()
        )
        completed_before_resume = sorted(manifest["shards"])
        assert completed_before_resume  # the kill came mid-flight or later

        code = subprocess.run(
            base_cmd + ["--resume", "--save", str(out_resumed)],
            env=env, cwd=Path(__file__).resolve().parents[1],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        ).returncode
        assert code == 0

        from repro.dataset.store import load_dataset

        scenario = ScenarioConfig(
            n_devices=devices, seed=11,
            topology=TopologyConfig(n_base_stations=400, seed=12),
        )
        fresh = FleetSimulator(scenario).run()
        resumed = load_dataset(out_resumed)
        assert digest(resumed) == digest(fresh)
        execution = resumed.metadata["execution"]
        assert (sorted(int(i) for i in completed_before_resume)
                == execution["resumed_shards"])
