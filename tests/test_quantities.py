"""Consistency checks over the paper's published quantities."""

from repro import quantities as q


class TestTable1:
    def test_34_models(self):
        assert len(q.TABLE1) == 34
        assert [row.model for row in q.TABLE1] == list(range(1, 35))

    def test_user_shares_sum_to_one(self):
        assert abs(sum(row.user_share for row in q.TABLE1) - 1.0) < 0.01

    def test_prevalences_are_fractions(self):
        assert all(0.0 < row.prevalence < 1.0 for row in q.TABLE1)

    def test_mean_prevalence_is_23_percent(self):
        """Sec. 3.1: prevalence averages at 23% across models."""
        mean = sum(row.prevalence for row in q.TABLE1) / len(q.TABLE1)
        assert abs(mean - q.AVG_PREVALENCE) < 0.01

    def test_frequency_range_matches_prose(self):
        """Sec. 3.1: per-model frequency spans 2.3 to 90.2."""
        freqs = [row.frequency for row in q.TABLE1]
        assert min(freqs) == 2.3
        assert max(freqs) == 90.2

    def test_four_5g_models(self):
        assert q.FIVE_G_MODELS == (23, 24, 33, 34)

    def test_5g_models_run_android_10(self):
        """Footnote 4: Android 9 does not support 5G."""
        for row in q.TABLE1:
            if row.has_5g:
                assert row.android_version == "10.0"

    def test_moments_admit_a_mixed_poisson(self):
        """P(N>=1) <= E[N] must hold for every row (used by the
        negative-binomial calibration)."""
        import math

        for row in q.TABLE1:
            assert -math.log(1 - row.prevalence) < row.frequency


class TestTable2:
    def test_ten_codes(self):
        assert len(q.TABLE2_ERROR_CODE_SHARES) == 10

    def test_shares_sum_to_cumulative(self):
        total = sum(q.TABLE2_ERROR_CODE_SHARES.values())
        assert abs(total - q.TABLE2_TOP10_CUMULATIVE) < 1e-9

    def test_shares_are_descending(self):
        shares = list(q.TABLE2_ERROR_CODE_SHARES.values())
        assert shares == sorted(shares, reverse=True)

    def test_top_code_is_gprs_registration(self):
        top = next(iter(q.TABLE2_ERROR_CODE_SHARES))
        assert top == "GPRS_REGISTRATION_FAIL"


class TestLandscapeShares:
    def test_isp_bs_shares_sum_to_one(self):
        assert abs(sum(q.ISP_BS_SHARE.values()) - 1.0) < 1e-9

    def test_isp_prevalence_ordering(self):
        """Sec. 3.3: ISP-B worst, then ISP-A, then ISP-C."""
        assert (q.ISP_PREVALENCE["ISP-B"] > q.ISP_PREVALENCE["ISP-A"]
                > q.ISP_PREVALENCE["ISP-C"])

    def test_rat_support_exceeds_one(self):
        """Multi-RAT BSes make the four shares sum past 100%."""
        assert sum(q.RAT_BS_SUPPORT_SHARE.values()) > 1.0

    def test_type_mix_adds_up(self):
        per_device = (q.AVG_DATA_SETUP_ERRORS_PER_DEVICE
                      + q.AVG_DATA_STALLS_PER_DEVICE
                      + q.AVG_OUT_OF_SERVICE_PER_DEVICE)
        assert abs(per_device - q.AVG_FAILURES_PER_DEVICE) < 0.5


class TestEnhancementNumbers:
    def test_timp_probations_are_much_shorter_than_vanilla(self):
        assert all(
            p < q.VANILLA_PROBATION_S for p in q.TIMP_OPTIMAL_PROBATIONS_S
        )

    def test_timp_beats_vanilla_expected_time(self):
        assert q.TIMP_EXPECTED_RECOVERY_S < q.VANILLA_EXPECTED_RECOVERY_S

    def test_timp_recovery_within_user_tolerance(self):
        """Sec. 4.2: 27.8 s < the ~30 s user tolerance."""
        assert q.TIMP_EXPECTED_RECOVERY_S < q.USER_MANUAL_RESET_S

    def test_overhead_worst_case_dominates_typical(self):
        for key in q.OVERHEAD_TYPICAL:
            assert q.OVERHEAD_WORST_CASE[key] >= q.OVERHEAD_TYPICAL[key]
