"""Tests for the scenario-pack DSL (``repro.scenarios.pack``).

The load-bearing properties:

* validation happens entirely at parse time, with the full dotted key
  path (and a did-you-mean hint) in every error;
* dict -> pack -> dict is a fixed point, and the YAML form round-trips
  to the identical pack (same fingerprint, same ScenarioConfig);
* the bundled reference packs all load, and ``paper-baseline``
  composes exactly the scenario the CLI runs by default;
* the carrier-selection policies translate to the documented
  ``isp_weights``.
"""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.fleet import behavior
from repro.fleet.scenario import ENGINE_BATCH, ENGINE_SERIAL
from repro.network.isp import ISP, ISP_PROFILES
from repro.scenarios import (
    PackError,
    load_pack,
    pack_from_dict,
    pack_to_dict,
    resolve_pack_paths,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKS_DIR = REPO_ROOT / "packs"

yaml = pytest.importorskip("yaml")


def minimal(**overrides) -> dict:
    document = {"name": "test-pack"}
    document.update(overrides)
    return document


class TestValidation:
    def test_minimal_pack_gets_defaults(self):
        pack = pack_from_dict(minimal())
        assert pack.scenario.n_devices == 2_000
        assert pack.scenario.seed == 2_020
        assert pack.engine == ENGINE_BATCH
        assert pack.scenario.isp_weights is None
        assert pack.scenario.ambient_factor_5g is None
        assert pack.scenario.chaos is None

    def test_name_is_required(self):
        with pytest.raises(PackError, match="name"):
            pack_from_dict({})

    def test_bad_name_rejected(self):
        with pytest.raises(PackError, match="name"):
            pack_from_dict(minimal(name="Has Spaces"))

    def test_unknown_top_level_key_with_suggestion(self):
        with pytest.raises(PackError) as excinfo:
            pack_from_dict(minimal(flete={"devices": 10}))
        assert "flete" in str(excinfo.value)
        assert "did you mean 'fleet'" in str(excinfo.value)

    def test_unknown_nested_key_carries_full_path(self):
        with pytest.raises(PackError) as excinfo:
            pack_from_dict(minimal(chaos={"drop_rat": 0.5}))
        assert excinfo.value.path == "chaos.drop_rat"
        assert "did you mean 'drop_rate'" in str(excinfo.value)

    def test_out_of_range_value_carries_full_path(self):
        with pytest.raises(PackError) as excinfo:
            pack_from_dict(minimal(chaos={"drop_rate": 1.5}))
        assert excinfo.value.path == "chaos.drop_rate"
        assert "within [0, 1]" in str(excinfo.value)

    def test_bool_is_not_a_number(self):
        # YAML footgun: `devices: true` must not parse as 1.
        with pytest.raises(PackError, match="integer"):
            pack_from_dict(minimal(fleet={"devices": True}))

    def test_source_path_prefixes_errors(self, tmp_path):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: bad\nfleet:\n  devices: -3\n")
        with pytest.raises(PackError) as excinfo:
            load_pack(bad)
        message = str(excinfo.value)
        assert message.startswith(str(bad))
        assert "fleet.devices" in message

    def test_empty_outage_window_rejected(self):
        with pytest.raises(PackError, match="empty"):
            pack_from_dict(
                minimal(chaos={"outages": [[7200, 3600]]})
            )

    def test_unknown_deployment_class_suggested(self):
        with pytest.raises(PackError) as excinfo:
            pack_from_dict(minimal(
                topology={"deployment_mix": {"urbann": 1.0}}
            ))
        assert "did you mean 'urban'" in str(excinfo.value)

    def test_unsupported_schema_version(self):
        with pytest.raises(PackError, match="schema version"):
            pack_from_dict(minimal(pack=99))

    def test_user_defined_weights_required(self):
        with pytest.raises(PackError) as excinfo:
            pack_from_dict(minimal(carriers={"policy": "user-defined"}))
        assert excinfo.value.path == "carriers.weights"

    def test_weights_without_user_policy_rejected(self):
        with pytest.raises(PackError, match="only valid"):
            pack_from_dict(minimal(
                carriers={"weights": {"ISP-A": 1.0}}
            ))


class TestRoundTrip:
    def rich_document(self) -> dict:
        return {
            "pack": 1,
            "name": "round-trip",
            "description": "every section exercised",
            "tags": ["a", "b"],
            "fleet": {"devices": 120, "seed": 9,
                      "study_months": 2.0},
            "carriers": {"policy": "user-defined",
                         "weights": {"ISP-A": 0.5, "ISP-B": 0.3,
                                     "ISP-C": 0.2}},
            "five_g": {"coverage_hole_factor": 2.0},
            "topology": {"deployment_mix": {"urban": 0.6,
                                            "suburban": 0.4}},
            "chaos": {"drop_rate": 0.1,
                      "outage_waves": {"count": 2,
                                       "first_start_s": 100,
                                       "duration_s": 50,
                                       "spacing_s": 500}},
            "run": {"engine": "serial", "workers": 2},
        }

    def test_dict_to_pack_to_dict_is_fixed_point(self):
        pack = pack_from_dict(self.rich_document())
        normalized = pack_to_dict(pack)
        again = pack_from_dict(normalized)
        assert pack_to_dict(again) == normalized
        assert again.fingerprint() == pack.fingerprint()

    def test_yaml_round_trip_is_identical(self, tmp_path):
        pack = pack_from_dict(self.rich_document())
        path = tmp_path / "pack.yaml"
        path.write_text(yaml.safe_dump(pack_to_dict(pack)))
        loaded = load_pack(path)
        assert loaded.fingerprint() == pack.fingerprint()
        assert loaded.scenario == pack.scenario
        assert loaded.workers == pack.workers

    def test_json_pack_loads_too(self, tmp_path):
        pack = pack_from_dict(self.rich_document())
        path = tmp_path / "pack.json"
        path.write_text(json.dumps(pack_to_dict(pack)))
        assert load_pack(path).fingerprint() == pack.fingerprint()

    def test_outage_waves_expand_to_windows(self):
        pack = pack_from_dict(self.rich_document())
        assert pack.scenario.chaos.outages == (
            (100.0, 150.0), (600.0, 650.0),
        )

    def test_fingerprint_tracks_content_not_source(self, tmp_path):
        pack = pack_from_dict(self.rich_document())
        path = tmp_path / "elsewhere.yaml"
        path.write_text(yaml.safe_dump(pack_to_dict(pack)))
        assert load_pack(path).fingerprint() == pack.fingerprint()
        changed = self.rich_document()
        changed["fleet"]["devices"] = 121
        assert (pack_from_dict(changed).fingerprint()
                != pack.fingerprint())


class TestCarrierPolicies:
    def test_operator_assigned_keeps_default_population(self):
        pack = pack_from_dict(minimal(
            carriers={"policy": "operator-assigned"}
        ))
        assert pack.scenario.isp_weights is None

    def test_user_defined_weights_in_isp_order(self):
        pack = pack_from_dict(minimal(
            carriers={"policy": "user-defined",
                      "weights": {"ISP-B": 3.0, "A": 1.0}}
        ))
        # Ratios in ISP order (ISP-A, ISP-B, ISP-C); unmentioned
        # carriers get zero population.
        assert pack.scenario.isp_weights == (1.0, 3.0, 0.0)

    def test_quality_first_discounts_by_hazard(self):
        pack = pack_from_dict(minimal(
            carriers={"policy": "quality-first"}
        ))
        expected = [ISP_PROFILES[isp].subscriber_share
                    / behavior.ISP_HAZARD_FACTOR[isp] for isp in ISP]
        assert pack.scenario.isp_weights == pytest.approx(expected)

    def test_coverage_hole_scales_ambient_factor(self):
        pack = pack_from_dict(minimal(
            five_g={"coverage_hole_factor": 2.5}
        ))
        assert pack.scenario.ambient_factor_5g == pytest.approx(
            behavior.AMBIENT_FRACTION_5G * 2.5
        )


class TestBundledPacks:
    def test_all_reference_packs_load(self):
        paths = resolve_pack_paths([str(PACKS_DIR),
                                    str(PACKS_DIR / "ci")])
        packs = [load_pack(path) for path in paths]
        assert len(packs) >= 9
        assert len({pack.name for pack in packs}) == len(packs)

    def test_paper_baseline_matches_cli_defaults(self):
        """`repro sweep packs/paper-baseline.yaml` is `repro study`."""
        from repro.cli import _scenario

        pack = load_pack(PACKS_DIR / "paper-baseline.yaml")
        args = build_parser().parse_args(["study"])
        assert pack.scenario == _scenario(args)

    def test_ci_packs_are_smoke_sized(self):
        for path in resolve_pack_paths([str(PACKS_DIR / "ci")]):
            pack = load_pack(path)
            assert pack.scenario.n_devices <= 600, pack.name

    def test_resolve_rejects_missing_and_empty(self, tmp_path):
        with pytest.raises(PackError, match="no such pack"):
            resolve_pack_paths([str(tmp_path / "nope.yaml")])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(PackError, match="no pack files"):
            resolve_pack_paths([str(empty)])

    def test_resolve_dedups_and_sorts(self, tmp_path):
        for name in ("b.yaml", "a.yaml"):
            (tmp_path / name).write_text(
                f"name: {name.split('.')[0]}\n"
            )
        paths = resolve_pack_paths([str(tmp_path / "a.yaml"),
                                    str(tmp_path)])
        assert [path.name for path in paths] == ["a.yaml", "b.yaml"]


class TestEngineKnobs:
    """The new ScenarioConfig knobs stay None on defaults (so the
    golden digests are untouched) and validate when set."""

    def test_default_scenario_unchanged(self):
        from repro.fleet.scenario import ScenarioConfig

        config = ScenarioConfig(n_devices=10)
        assert config.isp_weights is None
        assert config.ambient_factor_5g is None
        assert config.topology.deployment_mix is None

    def test_isp_weights_normalized(self):
        from repro.fleet.scenario import ScenarioConfig

        config = ScenarioConfig(n_devices=10, isp_weights=(1, 1, 2))
        assert config.isp_weights == (1.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            ScenarioConfig(n_devices=10, isp_weights=(1, 1))
        with pytest.raises(ValueError):
            ScenarioConfig(n_devices=10, isp_weights=(0, 0, 0))

    def test_deployment_mix_normalized(self):
        from repro.network.topology import TopologyConfig

        config = TopologyConfig(deployment_mix=(("urban", 3.0),
                                                ("rural", 1.0)))
        assert config.deployment_mix == (("URBAN", 3.0),
                                         ("RURAL", 1.0))
        with pytest.raises(ValueError):
            TopologyConfig(deployment_mix=(("nowhere", 1.0),))

    def test_engine_serial_vs_batch_both_honor_isp_weights(self):
        from repro.fleet.scenario import ScenarioConfig
        from repro.fleet.simulator import FleetSimulator

        for engine in (ENGINE_SERIAL, ENGINE_BATCH):
            config = ScenarioConfig(
                n_devices=80, seed=5, engine=engine,
                isp_weights=(0.0, 0.0, 1.0),
            )
            dataset = FleetSimulator(config).run()
            isps = {device.isp for device in dataset.devices}
            assert isps == {"ISP-C"}, engine
