"""Tests for the sharded fleet execution engine (``repro.parallel``).

The load-bearing guarantee is byte-identity: a sharded run must produce
exactly the records of the sequential run, in the same order, for any
worker count — that is what makes ``--workers`` a pure performance knob
and keeps common-random-numbers pairing intact across A/B arms.
"""

import dataclasses
import hashlib
import json

import pytest

from repro.chaos import ChaosConfig
from repro.chaos.transport import ChaosTransport, PayloadDropped
from repro.core.study import run_ab_evaluation
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel import (
    ShardMergeError,
    make_shards,
    merge_shard_datasets,
    merge_telemetry_summaries,
    run_sharded,
    shard_bounds,
)
from repro.parallel.engine import resolve_mode


def tiny_scenario(n_devices=60, seed=11, **kwargs) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=n_devices,
        seed=seed,
        topology=TopologyConfig(n_base_stations=120, seed=seed + 1),
        **kwargs,
    )


def digest(dataset) -> str:
    """SHA-256 over all records, order-sensitive (metadata excluded)."""
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


class TestShardBounds:
    @pytest.mark.parametrize("n_devices,n_shards", [
        (10, 1), (10, 3), (10, 10), (1, 1), (7, 2), (100, 8),
    ])
    def test_partition_covers_exactly(self, n_devices, n_shards):
        bounds = shard_bounds(n_devices, n_shards)
        ids = [i for lo, hi in bounds for i in range(lo, hi)]
        assert ids == list(range(1, n_devices + 1))

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in shard_bounds(103, 8)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 103

    def test_more_shards_than_devices_clamps(self):
        bounds = shard_bounds(3, 8)
        assert len(bounds) == 3
        assert all(hi - lo == 1 for lo, hi in bounds)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 2)
        with pytest.raises(ValueError):
            shard_bounds(10, 0)

    def test_make_shards_specs(self):
        shards = make_shards(10, 3)
        assert [s.index for s in shards] == [0, 1, 2]
        assert all(s.n_shards == 3 for s in shards)
        assert list(shards[0].device_ids())[0] == 1


class TestDeterminism:
    """Sharded output must be byte-identical to the sequential run."""

    def test_inline_matches_serial(self):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        sharded = run_sharded(scenario, workers=4, mode="inline")
        assert digest(sharded) == digest(serial)

    def test_process_matches_serial(self):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        sharded = FleetSimulator(scenario).run(workers=2)
        assert digest(sharded) == digest(serial)

    def test_worker_count_is_irrelevant(self):
        scenario = tiny_scenario(n_devices=23)
        digests = {
            digest(run_sharded(scenario, workers=w, mode="inline"))
            for w in (2, 3, 5)
        }
        assert len(digests) == 1

    def test_chaos_records_survive_sharding(self):
        scenario = tiny_scenario(chaos=ChaosConfig(seed=5))
        serial = FleetSimulator(scenario).run()
        sharded = run_sharded(scenario, workers=3, mode="inline")
        assert digest(sharded) == digest(serial)

    def test_rejects_bad_worker_count(self):
        simulator = FleetSimulator(tiny_scenario(n_devices=4))
        with pytest.raises(ValueError):
            simulator.run(workers=0)

    def test_mode_resolution(self, monkeypatch):
        assert resolve_mode(None) == "process"
        assert resolve_mode("inline") == "inline"
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "inline")
        assert resolve_mode(None) == "inline"
        with pytest.raises(ValueError):
            resolve_mode("threads")


class TestABParity:
    def test_deltas_identical_across_worker_counts(self):
        scenario = tiny_scenario(n_devices=80, seed=3)
        results = {}
        for workers in (None, 2):
            vanilla, patched, evaluation = run_ab_evaluation(
                scenario, workers=workers
            )
            results[workers] = (
                digest(vanilla), digest(patched),
                dataclasses.asdict(evaluation),
            )
        assert results[None] == results[2]


class TestExecutionMetadata:
    def test_serial_run_records_execution(self):
        dataset = FleetSimulator(tiny_scenario(n_devices=8)).run()
        execution = dataset.metadata["execution"]
        assert execution["mode"] == "serial"
        assert execution["workers"] == 1
        assert execution["n_shards"] == 1
        [shard] = execution["shards"]
        assert shard["n_devices"] == 8
        assert shard["device_lo"] == 1 and shard["device_hi"] == 9
        assert shard["wall_s"] >= 0 and shard["cpu_s"] >= 0

    def test_sharded_run_records_execution(self):
        dataset = run_sharded(tiny_scenario(n_devices=9), workers=3,
                              mode="inline")
        execution = dataset.metadata["execution"]
        assert execution["mode"] == "inline"
        assert execution["workers"] == 3
        assert execution["n_shards"] == 3
        assert [s["shard"] for s in execution["shards"]] == [0, 1, 2]
        assert sum(s["n_devices"] for s in execution["shards"]) == 9
        assert execution["merge_s"] >= 0
        assert json.dumps(execution)  # must stay JSON-able

    def test_process_mode_records_start_method(self):
        dataset = FleetSimulator(tiny_scenario(n_devices=6)).run(workers=2)
        execution = dataset.metadata["execution"]
        if execution["mode"] == "process":
            assert execution["start_method"] in ("fork", "spawn")
        else:  # platform without multiprocessing: fallback recorded
            assert execution["fallback_reason"]


class TestTelemetryMerge:
    def test_sharded_chaos_run_reconciles(self):
        scenario = tiny_scenario(n_devices=40, chaos=ChaosConfig(seed=9))
        serial = FleetSimulator(scenario).run()
        sharded = run_sharded(scenario, workers=2, mode="inline")

        merged = sharded.metadata["telemetry"]
        assert merged["merged_from_shards"] == 2
        assert len(merged["shards"]) == 2
        rec = merged["reconciliation"]
        assert rec["unexplained"] == []
        assert rec["emitted"] == len(sharded.failures)
        assert rec["accepted"] == sum(
            s["reconciliation"]["accepted"] for s in merged["shards"]
        )
        # Same records emitted overall as the serial pipeline saw.
        serial_rec = serial.metadata["telemetry"]["reconciliation"]
        assert rec["emitted"] == serial_rec["emitted"]
        assert json.dumps(merged)

    def test_merge_sums_counters(self):
        shard = {
            "reconciliation": {
                "emitted": 5, "accepted": 4, "duplicates": 1, "shed": 0,
                "budget_exhausted": 0, "quarantined": 1, "in_flight": 0,
                "unexplained": [], "retry_histogram": {"1": 3},
                "transport": {"dropped": 2.0},
            },
            "server": {"accepted": 4.0},
            "n_devices": 10,
            "drain_rounds": 2,
        }
        merged = merge_telemetry_summaries([shard, shard])
        rec = merged["reconciliation"]
        assert rec["emitted"] == 10 and rec["accepted"] == 8
        assert rec["retry_histogram"] == {"1": 6}
        assert rec["transport"] == {"dropped": 4.0}
        assert merged["server"] == {"accepted": 8.0}
        assert merged["n_devices"] == 20
        assert merged["drain_rounds"] == 2

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_telemetry_summaries([])


class TestMergeInvariants:
    def test_rejects_gap_between_shards(self):
        scenario = tiny_scenario(n_devices=9)
        simulator = FleetSimulator(scenario)
        shards = make_shards(9, 3)
        first, _ = simulator.simulate_shard(shards[0])
        third, _ = simulator.simulate_shard(shards[2])
        with pytest.raises(ShardMergeError):
            merge_shard_datasets([first, third])

    def test_merge_is_concatenation(self):
        scenario = tiny_scenario(n_devices=9)
        simulator = FleetSimulator(scenario)
        pieces = [simulator.simulate_shard(spec)[0]
                  for spec in make_shards(9, 3)]
        merged = merge_shard_datasets(pieces)
        assert [d.device_id for d in merged.devices] == list(range(1, 10))


class TestPerSenderTransport:
    """A device's upload fault fate must not depend on how other
    devices' sends interleave — the invariant sharding relies on."""

    def fates(self, order, config):
        """Per-sender outcomes of interleaved sends in ``order``."""
        delivered: list[bytes] = []
        transport = ChaosTransport(delivered.append, config)
        outcomes: dict[str, list[str]] = {}
        counters: dict[str, int] = {}
        for sender in order:
            n = counters.get(sender, 0)
            counters[sender] = n + 1
            payload = f"{sender}:{n}".encode()
            try:
                transport.send(payload, sender=sender)
                outcomes.setdefault(sender, []).append("ok")
            except PayloadDropped:
                outcomes.setdefault(sender, []).append("dropped")
        return outcomes

    def test_fate_independent_of_interleaving(self):
        config = ChaosConfig(seed=13, drop_rate=0.4)
        a_first = self.fates(["a"] * 6 + ["b"] * 6, config)
        interleaved = self.fates(["a", "b"] * 6, config)
        assert a_first == interleaved

    def test_shared_stream_preserved_for_direct_calls(self):
        config = ChaosConfig(seed=13, drop_rate=0.4)
        outcomes = []
        transport = ChaosTransport(lambda p: None, config)
        for i in range(8):
            try:
                transport(f"p{i}".encode())
                outcomes.append("ok")
            except PayloadDropped:
                outcomes.append("dropped")
        # Arrival-order stream: a fresh transport replays identically.
        transport2 = ChaosTransport(lambda p: None, config)
        replay = []
        for i in range(8):
            try:
                transport2(f"p{i}".encode())
                replay.append("ok")
            except PayloadDropped:
                replay.append("dropped")
        assert outcomes == replay
