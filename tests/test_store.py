"""The durable segment store: sealing, folding, crash recovery, scrub."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.columnar import compute_analysis_block
from repro.backend.ingest import IngestionServer
from repro.dataset.records import FailureRecord, record_identity
from repro.dataset.store import Dataset
from repro.serve.harness import synthetic_records
from repro.store import (
    SegmentCorruptError,
    SegmentStore,
    StoreError,
    decode_segment,
    encode_segment,
)


def _records(n_devices=12, per_device=6, seed=7):
    return synthetic_records(n_devices, per_device, seed=seed)


def _direct_block(records):
    return compute_analysis_block(Dataset(failures=[
        FailureRecord.from_dict(r) for r in records
    ]))


def _store(tmp_path, **kwargs):
    kwargs.setdefault("seal_records", 10)
    kwargs.setdefault("device_bucket", 4)
    kwargs.setdefault("time_bucket_s", 240.0)
    return SegmentStore(tmp_path / "store", **kwargs)


class TestSegmentCodec:
    def test_round_trip_is_identity_exact(self):
        rows = _records()
        blob = encode_segment(rows, (0, 0))
        decoded, header = decode_segment(blob)
        assert header["n_records"] == len(rows)
        assert decoded == rows
        assert ([record_identity(r) for r in decoded]
                == [record_identity(r) for r in rows])

    def test_none_error_code_survives(self):
        rows = _records()
        rows[0] = dict(rows[0], error_code=None)
        decoded, _header = decode_segment(encode_segment(rows, (1, 2)))
        assert decoded[0]["error_code"] is None

    def test_bit_flip_is_detected(self):
        blob = bytearray(encode_segment(_records(), (0, 0)))
        blob[len(blob) // 2] ^= 0x10
        with pytest.raises(SegmentCorruptError, match="digest"):
            decode_segment(bytes(blob))

    def test_truncation_is_detected(self):
        blob = encode_segment(_records(), (0, 0))
        with pytest.raises(SegmentCorruptError):
            decode_segment(blob[: len(blob) // 2])

    def test_garbage_is_detected(self):
        with pytest.raises(SegmentCorruptError):
            decode_segment(b"not a segment at all\njunk")


class TestSegmentStore:
    def test_append_seal_and_fold_exactly(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records:
            store.append(r)
        store.flush()
        assert store.n_tail_records == 0
        assert store.n_sealed_records == len(records)
        query = store.fold_analysis()
        assert query.complete
        assert (json.dumps(query.block, sort_keys=True)
                == json.dumps(_direct_block(records), sort_keys=True))

    def test_append_is_idempotent(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records:
            store.append(r)
            store.append(r)  # retry after an ambiguous fault
        assert len(store.known_keys()) == len(records)
        assert store.fold_analysis().block == _direct_block(records)

    def test_restart_restores_tail_from_wal(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records[:7]:  # below the seal threshold
            store.append(r)
        assert store.n_segments == 0
        reloaded = _store(tmp_path)
        assert reloaded.n_tail_records == 7
        assert reloaded.known_keys() == store.known_keys()
        assert reloaded.fold_analysis().block == _direct_block(records[:7])

    def test_scrub_clean_store_reports_clean(self, tmp_path):
        store = _store(tmp_path)
        for r in _records():
            store.append(r)
        store.flush()
        report = store.scrub()
        assert report.clean and report.ok
        assert report.segments_ok == store.n_segments

    def test_fold_skips_corrupt_segment_with_accounting(self, tmp_path):
        store = _store(tmp_path)
        for r in _records():
            store.append(r)
        store.flush()
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-3] ^= 0x01
        victim.write_bytes(bytes(blob))
        query = store.fold_analysis()
        assert not query.complete
        assert query.skipped[0]["segment"] == victim.name
        assert "digest" in query.skipped[0]["reason"]

    def test_scrub_quarantines_and_recovers_via_wal(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records:
            store.append(r)
        store.flush()
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        damaged_keys = set(store._live[victim.name]["keys"])
        blob = bytearray(victim.read_bytes())
        blob[-5] ^= 0x40
        victim.write_bytes(bytes(blob))

        report = store.scrub(repair=True)
        assert report.ok and not report.clean
        assert len(report.quarantined) == 1
        assert set(report.recovered_keys) == damaged_keys
        assert not report.lost_keys
        assert (store.quarantine_dir / victim.name).exists()
        assert not victim.exists()
        # Recovered rows are back in the tail; the fold is whole again.
        assert store.fold_analysis().block == _direct_block(records)
        # And the repair is durable across a restart.
        reloaded = _store(tmp_path)
        assert reloaded.fold_analysis().block == _direct_block(records)

    def test_scrub_adopts_valid_orphan(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records:
            store.append(r)
        store.flush()
        # Simulate a crash between rename and commit: drop the last
        # commit line from the journal, leaving a valid orphan file.
        lines = store.journal_path.read_bytes().splitlines(keepends=True)
        commit_at = max(
            i for i, line in enumerate(lines)
            if json.loads(line)["op"] == "commit"
        )
        orphan = json.loads(lines[commit_at])["segment"]
        store.journal_path.write_bytes(
            b"".join(lines[:commit_at] + lines[commit_at + 1:])
        )

        reloaded = _store(tmp_path)
        report = reloaded.scrub(repair=True)
        assert [f["segment"] for f in report.adopted] == [orphan]
        assert report.ok
        assert reloaded.fold_analysis().block == _direct_block(records)

    def test_scrub_removes_superseded_orphan(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        for r in records:
            store.append(r)
        store.flush()
        # A duplicate file of a committed segment: every key covered.
        source = sorted(store.segments_dir.glob("*.seg"))[0]
        copy = source.with_name("seg-t0-d0-999999.seg")
        copy.write_bytes(source.read_bytes())
        report = _store(tmp_path).scrub(repair=True)
        assert copy.name in report.superseded
        assert not copy.exists()

    def test_scrub_truncates_torn_journal_tail(self, tmp_path):
        store = _store(tmp_path)
        for r in _records()[:5]:
            store.append(r)
        with open(store.journal_path, "ab") as handle:
            handle.write(b'{"op":"wal","key":"torn')  # no newline
        reloaded = _store(tmp_path)
        report = reloaded.scrub(repair=True)
        assert report.journal_truncated_bytes > 0
        assert reloaded.n_tail_records == 5
        # The next reload sees a clean journal.
        assert _store(tmp_path).scrub().clean

    def test_scrub_after_healed_torn_tail_keeps_later_appends(
        self, tmp_path
    ):
        """Appends after loading a torn journal heal the tail; scrub
        must not truncate back to the load-time offset, which would
        destroy every WAL line fsynced since load."""
        records = _records()
        store = _store(tmp_path)
        for r in records[:5]:
            store.append(r)
        with open(store.journal_path, "ab") as handle:
            handle.write(b'{"op":"wal","key":"torn')  # crash mid-append
        reloaded = _store(tmp_path)  # loads with the tail still torn
        for r in records[5:7]:
            reloaded.append(r)  # append_line terminates the fragment
        report = reloaded.scrub(repair=True)
        # The fragment is now its own complete CRC-failing line, not a
        # torn tail: nothing to truncate, one damaged line reported.
        assert report.journal_truncated_bytes == 0
        assert report.journal_damaged_lines == 1
        assert report.ok
        assert reloaded.n_tail_records == 7
        final = _store(tmp_path)
        assert final.n_tail_records == 7
        assert final.fold_analysis().block == _direct_block(records[:7])

    def test_scrub_removes_leftover_temp_files(self, tmp_path):
        store = _store(tmp_path)
        store.append(_records()[0])
        store.segments_dir.mkdir(parents=True, exist_ok=True)
        leftover = store.segments_dir / "seg-x.seg.tmp123"
        leftover.write_bytes(b"half a segment")
        report = store.scrub(repair=True)
        assert report.temp_files_removed == [str(leftover)]
        assert not leftover.exists()

    def test_scrub_without_repair_leaves_store_untouched(self, tmp_path):
        store = _store(tmp_path)
        for r in _records():
            store.append(r)
        store.flush()
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0x02
        victim.write_bytes(bytes(blob))
        report = store.scrub(repair=False)
        assert len(report.quarantined) == 1
        assert victim.exists()
        assert not store.quarantine_dir.exists()

    def test_wal_disabled_store_still_seals(self, tmp_path):
        records = _records()
        store = _store(tmp_path, wal=False)
        for r in records:
            store.append(r)
        store.flush()
        reloaded = _store(tmp_path, wal=False)
        assert reloaded.n_sealed_records == len(records)
        assert reloaded.fold_analysis().block == _direct_block(records)

    def test_rejects_bad_config(self, tmp_path):
        with pytest.raises(StoreError):
            SegmentStore(tmp_path / "s", seal_records=0)
        with pytest.raises(StoreError):
            SegmentStore(tmp_path / "s", device_bucket=0)

    def test_dataset_view_carries_skip_accounting(self, tmp_path):
        store = _store(tmp_path)
        for r in _records():
            store.append(r)
        store.flush()
        dataset = store.dataset()
        assert dataset.n_failures == store.n_sealed_records
        assert dataset.metadata["store"]["skipped_segments"] == []


class TestIngestionServerStore:
    def test_append_before_dedup_then_checkpoint_shrinks(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        server = IngestionServer()
        server.attach_store(store)
        for r in records:
            server.ingest_record(dict(r))
        assert server.records == []  # the store owns the records
        assert server.accepted == len(records)
        snapshot = server.checkpoint()
        assert snapshot["records"] == []
        assert snapshot["seen"] == []  # all keys journal-proven
        assert snapshot["store"] == store.describe()

    def test_restore_reattaches_store_and_dedups(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        server = IngestionServer()
        server.attach_store(store)
        for r in records:
            server.ingest_record(dict(r))
        snapshot = server.checkpoint()

        revived = IngestionServer.restore(snapshot)
        assert revived.store is not None
        for r in records:  # full replay: everything dedups
            revived.ingest_record(dict(r))
        assert revived.duplicates == len(records)
        assert revived.store.fold_analysis().block == _direct_block(records)

    def test_attach_store_migrates_existing_records(self, tmp_path):
        records = _records()
        server = IngestionServer()
        for r in records[:5]:
            server.ingest_record(dict(r))
        assert len(server.records) == 5
        store = _store(tmp_path)
        server.attach_store(store)
        assert server.records == []
        assert len(store.known_keys()) == 5
        for r in records[:5]:
            server.ingest_record(dict(r))
        assert server.duplicates == 5

    def test_forget_keys_invites_reupload(self, tmp_path):
        records = _records()
        store = _store(tmp_path)
        server = IngestionServer()
        server.attach_store(store)
        for r in records:
            server.ingest_record(dict(r))
        lost = record_identity(records[0])
        assert server.forget_keys([lost]) == 1
        before = server.accepted
        server.ingest_record(dict(records[0]))
        # The store still owns the record, so the re-upload is a
        # durable no-op, but the ingest layer accepts it again.
        assert server.accepted == before + 1


class TestDrainResumeByteIdentity:
    def test_checkpoint_resume_round_trip_is_byte_identical(
        self, tmp_path
    ):
        """The satellite acceptance check: a drain checkpoint plus the
        on-disk store reproduce the exact analysis of the original."""
        records = _records(16, 8, seed=21)
        store = _store(tmp_path)
        server = IngestionServer()
        server.attach_store(store)
        for r in records:
            server.ingest_record(dict(r))
        direct = _direct_block(records)
        checkpoint = json.dumps(server.checkpoint(), sort_keys=True)

        revived = IngestionServer.restore(json.loads(checkpoint))
        revived.store.flush()
        query = revived.store.fold_analysis()
        assert query.complete
        assert (json.dumps(query.block, sort_keys=True)
                == json.dumps(direct, sort_keys=True))

    def test_sigkill_window_between_wal_and_dedup_is_safe(self, tmp_path):
        """A crash after the WAL fsync but before the dedup insert
        must not drop or double-count the record on retry."""
        records = _records()
        store = _store(tmp_path)
        server = IngestionServer()
        server.attach_store(store)
        data = dict(records[0])
        key = record_identity(data)
        # Simulate the torn window: the store owns the record, the
        # dedup set does not.
        store.append(dict(data), key=key)
        server._seen.discard(key)
        server.ingest_record(dict(data))  # the client retry
        assert server.accepted == 1
        assert len(store.known_keys()) == 1
