"""Unit tests for overhead accounting and upload batching."""

import random

import pytest

from repro.monitoring.overhead import OverheadAccountant
from repro.monitoring.uploader import (
    CELLULAR_BACKLOG_LIMIT_BYTES,
    UploadBatcher,
)


class TestOverheadAccountant:
    def test_idle_monitor_costs_nothing(self):
        """Sec. 2.2: Android-MOD is dormant without failures."""
        accountant = OverheadAccountant()
        assert accountant.cpu_utilization == 0.0
        assert accountant.storage_bytes == 0
        assert accountant.network_bytes == 0

    def test_event_lifecycle_accumulates(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_closed(duration_s=30.0, probe_rounds=6,
                                probe_bytes=2_100)
        assert accountant.cpu_seconds > 0
        assert accountant.storage_bytes > 0
        assert accountant.network_bytes == 2_100
        assert accountant.failure_seconds == 30.0

    def test_close_without_open_rejected(self):
        with pytest.raises(RuntimeError):
            OverheadAccountant().event_closed(1.0)

    def test_peak_open_events_tracks_memory(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_opened()
        accountant.event_closed(1.0)
        accountant.event_closed(1.0)
        assert accountant.peak_open_events == 2
        baseline = OverheadAccountant().memory_bytes
        assert accountant.memory_bytes > baseline

    def test_typical_envelope_holds_for_typical_device(self):
        """The paper's typical-case envelope (Sec. 2.2): a device with
        the mean 33 failures over 8 months stays inside it."""
        accountant = OverheadAccountant(months_observed=8.0)
        for _ in range(33):
            accountant.event_opened()
            accountant.event_closed(duration_s=180.0, probe_rounds=12,
                                    probe_bytes=12 * 350)
        assert accountant.within_envelope()

    def test_worst_case_envelope_holds_for_heavy_device(self):
        """Sec. 2.2: 40k failures/month still fits the worst case."""
        accountant = OverheadAccountant(months_observed=1.0)
        for _ in range(5_000):  # scaled-down heavy producer
            accountant.event_opened()
            accountant.event_closed(duration_s=60.0, probe_rounds=6,
                                    probe_bytes=6 * 350)
        assert accountant.within_envelope(worst_case=True)

    def test_upload_moves_storage_to_network(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_closed(10.0)
        stored = accountant.storage_bytes
        accountant.uploaded(stored)
        assert accountant.storage_bytes == 0
        assert accountant.network_bytes >= stored

    def test_summary_keys_match_the_envelope(self):
        summary = OverheadAccountant().summary()
        assert set(summary) == {
            "cpu_utilization", "memory_bytes", "storage_bytes",
            "network_bytes_per_month",
        }


class TestUploadBatcher:
    def test_enqueue_compresses(self):
        batcher = UploadBatcher()
        size = batcher.enqueue({"key": "value " * 100})
        assert 0 < size < len("value " * 100)

    def test_flush_on_wifi(self):
        batcher = UploadBatcher()
        batcher.enqueue({"a": 1})
        flushed = batcher.maybe_flush(wifi_available=True)
        assert flushed > 0
        assert batcher.pending_bytes == 0
        assert batcher.uploads == 1

    def test_small_backlog_may_use_cellular(self):
        batcher = UploadBatcher()
        batcher.enqueue({"a": 1})
        assert batcher.maybe_flush(wifi_available=False) > 0

    def test_large_backlog_waits_for_wifi(self):
        """Sec. 2.2: heavy producers upload only on WiFi."""
        batcher = UploadBatcher()
        while batcher.pending_bytes <= CELLULAR_BACKLOG_LIMIT_BYTES:
            batcher.enqueue({"payload": "x" * 4_096,
                             "n": batcher.pending_bytes})
        assert batcher.maybe_flush(wifi_available=False) == 0
        assert batcher.maybe_flush(wifi_available=True) > 0

    def test_transport_receives_payloads(self):
        received = []
        batcher = UploadBatcher(transport=received.append)
        batcher.enqueue({"a": 1})
        batcher.enqueue({"b": 2})
        batcher.maybe_flush(wifi_available=True)
        assert len(received) == 2

    def test_empty_flush_is_zero(self):
        assert UploadBatcher().maybe_flush(wifi_available=True) == 0

    def test_cellular_boundary_is_inclusive(self):
        """A backlog of exactly CELLULAR_BACKLOG_LIMIT_BYTES may still
        ride cellular; one byte more waits for WiFi."""
        at_limit = UploadBatcher()
        at_limit.enqueue_payload(b"x" * CELLULAR_BACKLOG_LIMIT_BYTES)
        assert at_limit.pending_bytes == CELLULAR_BACKLOG_LIMIT_BYTES
        assert at_limit.cellular_permitted()
        assert at_limit.maybe_flush(wifi_available=False) > 0

        over_limit = UploadBatcher()
        over_limit.enqueue_payload(
            b"x" * (CELLULAR_BACKLOG_LIMIT_BYTES + 1)
        )
        assert not over_limit.cellular_permitted()
        assert over_limit.maybe_flush(wifi_available=False) == 0
        assert over_limit.maybe_flush(wifi_available=True) > 0


class FlakyTransport:
    """Fails selected send indices (0-based); records deliveries."""

    def __init__(self, fail_indices=()):
        self.fail_indices = set(fail_indices)
        self.calls = 0
        self.delivered = []

    def __call__(self, payload: bytes) -> None:
        index = self.calls
        self.calls += 1
        if index in self.fail_indices:
            raise ConnectionError(f"send {index} failed")
        self.delivered.append(payload)


class TestDurableSpool:
    def test_partial_flush_is_exception_safe(self):
        """A transport failure mid-flush keeps unacked payloads
        spooled and counts acked ones exactly once (no re-send)."""
        transport = FlakyTransport(fail_indices={2})
        batcher = UploadBatcher(transport=transport)
        sizes = [batcher.enqueue({"n": i, "pad": "x" * 50})
                 for i in range(4)]
        flushed = batcher.maybe_flush(wifi_available=True)
        assert flushed == sizes[0] + sizes[1]
        assert batcher.uploaded_bytes == flushed
        assert batcher.acked_payloads == 2
        assert batcher.pending_payloads == 2
        assert batcher.pending_bytes == sizes[2] + sizes[3]
        assert batcher.failed_sends == 1

        # The retry sends only the two unacked payloads.
        flushed = batcher.maybe_flush(wifi_available=True)
        assert flushed == sizes[2] + sizes[3]
        assert len(transport.delivered) == 4
        assert len(set(transport.delivered)) == 4
        assert batcher.pending_payloads == 0
        assert batcher.retry_histogram == {0: 3, 1: 1}

    def test_backoff_gates_retries(self):
        transport = FlakyTransport(fail_indices={0})
        batcher = UploadBatcher(transport=transport,
                                base_backoff_s=10.0, jitter=0.0,
                                rng=random.Random(1))
        batcher.enqueue({"a": 1})
        assert batcher.maybe_flush(True, now=100.0) == 0
        assert batcher.next_attempt_s == pytest.approx(110.0)
        # Inside the backoff window: no transport call at all.
        assert batcher.maybe_flush(True, now=105.0) == 0
        assert transport.calls == 1
        # Past the window: retried and acked.
        assert batcher.maybe_flush(True, now=110.0) > 0
        assert batcher.pending_payloads == 0

    def test_backoff_grows_then_resets(self):
        transport = FlakyTransport(fail_indices={0, 1})
        batcher = UploadBatcher(transport=transport,
                                base_backoff_s=2.0,
                                backoff_multiplier=3.0, jitter=0.0)
        batcher.enqueue({"a": 1})
        batcher.maybe_flush(True, now=0.0)
        assert batcher.next_attempt_s == pytest.approx(2.0)
        batcher.maybe_flush(True, now=2.0)
        assert batcher.next_attempt_s == pytest.approx(8.0)
        batcher.maybe_flush(True, now=8.0)  # succeeds
        assert batcher.next_attempt_s == 0.0

    def test_retry_budget_drops_head_with_accounting(self):
        def always_down(payload: bytes) -> None:
            raise ConnectionError("backend down")

        batcher = UploadBatcher(transport=always_down, max_attempts=3)
        batcher.enqueue({"device_id": 1, "n": 1})
        for _ in range(3):
            batcher.maybe_flush(wifi_available=True)
        assert batcher.pending_payloads == 0
        assert batcher.budget_exhausted_payloads == 1
        assert len(batcher.budget_exhausted_keys) == 1
        assert batcher.failed_sends == 3
        assert batcher.retries == 2

    def test_bounded_spool_sheds_oldest_first(self):
        import hashlib

        batcher = UploadBatcher(max_spool_bytes=300)
        # High-entropy padding so each compressed payload stays >100 B.
        sizes = [batcher.enqueue({
            "n": i,
            "pad": hashlib.sha256(str(i).encode()).hexdigest() * 3,
        }) for i in range(8)]
        assert batcher.pending_bytes <= 300
        assert batcher.shed_payloads > 0
        assert batcher.shed_bytes == sum(sizes) - batcher.pending_bytes
        # The newest record is never shed; the shed ones are oldest.
        kept = set(batcher.pending_keys)
        assert len(kept) + len(batcher.shed_keys) == 8
        assert not (kept & set(batcher.shed_keys))

    def test_unbounded_by_default(self):
        batcher = UploadBatcher()
        for i in range(50):
            batcher.enqueue({"n": i, "pad": "x" * 4_096})
        assert batcher.shed_payloads == 0
        assert batcher.pending_payloads == 50
