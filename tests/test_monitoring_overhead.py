"""Unit tests for overhead accounting and upload batching."""

import pytest

from repro.monitoring.overhead import OverheadAccountant
from repro.monitoring.uploader import (
    CELLULAR_BACKLOG_LIMIT_BYTES,
    UploadBatcher,
)


class TestOverheadAccountant:
    def test_idle_monitor_costs_nothing(self):
        """Sec. 2.2: Android-MOD is dormant without failures."""
        accountant = OverheadAccountant()
        assert accountant.cpu_utilization == 0.0
        assert accountant.storage_bytes == 0
        assert accountant.network_bytes == 0

    def test_event_lifecycle_accumulates(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_closed(duration_s=30.0, probe_rounds=6,
                                probe_bytes=2_100)
        assert accountant.cpu_seconds > 0
        assert accountant.storage_bytes > 0
        assert accountant.network_bytes == 2_100
        assert accountant.failure_seconds == 30.0

    def test_close_without_open_rejected(self):
        with pytest.raises(RuntimeError):
            OverheadAccountant().event_closed(1.0)

    def test_peak_open_events_tracks_memory(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_opened()
        accountant.event_closed(1.0)
        accountant.event_closed(1.0)
        assert accountant.peak_open_events == 2
        baseline = OverheadAccountant().memory_bytes
        assert accountant.memory_bytes > baseline

    def test_typical_envelope_holds_for_typical_device(self):
        """The paper's typical-case envelope (Sec. 2.2): a device with
        the mean 33 failures over 8 months stays inside it."""
        accountant = OverheadAccountant(months_observed=8.0)
        for _ in range(33):
            accountant.event_opened()
            accountant.event_closed(duration_s=180.0, probe_rounds=12,
                                    probe_bytes=12 * 350)
        assert accountant.within_envelope()

    def test_worst_case_envelope_holds_for_heavy_device(self):
        """Sec. 2.2: 40k failures/month still fits the worst case."""
        accountant = OverheadAccountant(months_observed=1.0)
        for _ in range(5_000):  # scaled-down heavy producer
            accountant.event_opened()
            accountant.event_closed(duration_s=60.0, probe_rounds=6,
                                    probe_bytes=6 * 350)
        assert accountant.within_envelope(worst_case=True)

    def test_upload_moves_storage_to_network(self):
        accountant = OverheadAccountant()
        accountant.event_opened()
        accountant.event_closed(10.0)
        stored = accountant.storage_bytes
        accountant.uploaded(stored)
        assert accountant.storage_bytes == 0
        assert accountant.network_bytes >= stored

    def test_summary_keys_match_the_envelope(self):
        summary = OverheadAccountant().summary()
        assert set(summary) == {
            "cpu_utilization", "memory_bytes", "storage_bytes",
            "network_bytes_per_month",
        }


class TestUploadBatcher:
    def test_enqueue_compresses(self):
        batcher = UploadBatcher()
        size = batcher.enqueue({"key": "value " * 100})
        assert 0 < size < len("value " * 100)

    def test_flush_on_wifi(self):
        batcher = UploadBatcher()
        batcher.enqueue({"a": 1})
        flushed = batcher.maybe_flush(wifi_available=True)
        assert flushed > 0
        assert batcher.pending_bytes == 0
        assert batcher.uploads == 1

    def test_small_backlog_may_use_cellular(self):
        batcher = UploadBatcher()
        batcher.enqueue({"a": 1})
        assert batcher.maybe_flush(wifi_available=False) > 0

    def test_large_backlog_waits_for_wifi(self):
        """Sec. 2.2: heavy producers upload only on WiFi."""
        batcher = UploadBatcher()
        while batcher.pending_bytes <= CELLULAR_BACKLOG_LIMIT_BYTES:
            batcher.enqueue({"payload": "x" * 4_096,
                             "n": batcher.pending_bytes})
        assert batcher.maybe_flush(wifi_available=False) == 0
        assert batcher.maybe_flush(wifi_available=True) > 0

    def test_transport_receives_payloads(self):
        received = []
        batcher = UploadBatcher(transport=received.append)
        batcher.enqueue({"a": 1})
        batcher.enqueue({"b": 2})
        batcher.maybe_flush(wifi_available=True)
        assert len(received) == 2

    def test_empty_flush_is_zero(self):
        assert UploadBatcher().maybe_flush(wifi_available=True) == 0
