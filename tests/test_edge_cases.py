"""Edge cases and stress paths across the fleet and analysis layers."""

import random

import pytest

from repro.analysis.stats import compute_general_stats
from repro.dataset.records import ARM_PATCHED
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator, _poisson
from repro.network.topology import TopologyConfig


def tiny_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        n_devices=60,
        seed=99,
        topology=TopologyConfig(n_base_stations=150, seed=100),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestFrequencyScale:
    def test_scaling_down_reduces_events_roughly_linearly(self):
        full = FleetSimulator(tiny_scenario(n_devices=300)).run()
        scaled = FleetSimulator(
            tiny_scenario(n_devices=300, frequency_scale=0.25)
        ).run()
        ratio = scaled.n_failures / max(1, full.n_failures)
        assert 0.1 <= ratio <= 0.45

    def test_shapes_survive_scaling(self):
        scaled = FleetSimulator(
            tiny_scenario(n_devices=400, frequency_scale=0.5)
        ).run()
        stats = compute_general_stats(scaled)
        assert stats.headline_type_share > 0.95
        assert 0.25 <= stats.count_share_by_type.get(
            "DATA_STALL", 0.0) <= 0.55


class TestStudyMonths:
    def test_shorter_study_collects_fewer_failures(self):
        long = FleetSimulator(tiny_scenario(n_devices=300)).run()
        short = FleetSimulator(
            tiny_scenario(n_devices=300, study_months=2.0)
        ).run()
        assert short.n_failures < long.n_failures
        # Event timestamps stay inside the study window.
        horizon = 2.0 * 30.44 * 86_400 * 1.05
        assert all(f.start_time <= horizon + 100_000
                   for f in short.failures)


class TestEventCap:
    def test_max_events_per_device_caps_heavy_hitters(self):
        capped = FleetSimulator(
            tiny_scenario(n_devices=200, max_events_per_device=5)
        ).run()
        counts = {}
        for failure in capped.failures:
            counts[failure.device_id] = counts.get(
                failure.device_id, 0) + 1
        # 5 ambient + 5 transition-induced failures is the ceiling
        # (plus a handful from transitions realized as extra records).
        assert max(counts.values(), default=0) <= 12


class TestPatchedProbationOverride:
    def test_override_changes_recovery_durations(self):
        base = tiny_scenario(n_devices=250)
        default_patch = FleetSimulator(base.patched()).run()
        slow_patch = FleetSimulator(
            tiny_scenario(
                n_devices=250,
                patched_probations_s=(60.0, 60.0, 60.0),
            ).patched()
        ).run()
        def stall_total(ds):
            return sum(f.duration_s for f in ds.failures
                       if f.failure_type == "DATA_STALL")
        # A 60/60/60 "patch" is vanilla recovery: longer stalls.
        assert stall_total(slow_patch) > stall_total(default_patch)
        assert default_patch.metadata["arm"] == ARM_PATCHED


class TestPoissonEdge:
    def test_negative_mean_is_zero(self):
        assert _poisson(random.Random(0), -5.0) == 0

    def test_boundary_means(self):
        rng = random.Random(1)
        for mean in (199.9, 200.0, 200.1):
            draws = [_poisson(rng, mean) for _ in range(300)]
            assert abs(sum(draws) / len(draws) - mean) < mean * 0.1


class TestDegenerateDatasets:
    def test_single_device_dataset_analyzes(self):
        dataset = FleetSimulator(tiny_scenario(n_devices=1)).run()
        stats = compute_general_stats(dataset)
        assert stats.n_devices == 1
        assert stats.prevalence in (0.0, 1.0)

    def test_no_failure_device_is_recorded(self):
        dataset = FleetSimulator(tiny_scenario(n_devices=40)).run()
        failing = {f.device_id for f in dataset.failures}
        silent = [d for d in dataset.devices
                  if d.device_id not in failing]
        # With ~77% of phones failure-free, a 40-device fleet surely
        # contains silent devices — and they must still carry exposure.
        assert silent
        assert all(d.total_connected_s > 0 for d in silent)
