"""Unit tests for the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.simtime import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_MINUTE,
    SimClock,
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_advance_zero_is_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_to_now_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_repr_mentions_time(self):
        assert "1.500" in repr(SimClock(start=1.5))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_monotonicity_property(self, steps):
        clock = SimClock()
        previous = clock.now()
        for step in steps:
            clock.advance(step)
            assert clock.now() >= previous
            previous = clock.now()


def test_time_constants_are_consistent():
    assert SECONDS_PER_HOUR == 60 * SECONDS_PER_MINUTE
    assert SECONDS_PER_DAY == 24 * SECONDS_PER_HOUR
