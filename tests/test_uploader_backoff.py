"""Tests for the uploader's backoff gate and ack-protocol signals.

The exponential-backoff schedule, its jitter envelope, and the two
server-directed signals (``retry_after_s`` backpressure and
``permanent`` rejection) that the live ingest service speaks.
"""

import random

import pytest

from repro.dataset.records import record_identity
from repro.monitoring.uploader import UploadBatcher
from repro.obs import MetricsRegistry, use_registry


class Flaky:
    """Transport scripted as a sequence of outcomes: an exception
    instance to raise, or None to ack."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, payload):
        self.calls += 1
        outcome = self.outcomes.pop(0) if self.outcomes else None
        if outcome is not None:
            raise outcome


class Backpressure(RuntimeError):
    permanent = False

    def __init__(self, retry_after_s):
        super().__init__("retry later")
        self.retry_after_s = retry_after_s


class Rejected(RuntimeError):
    permanent = True


def record(device_id=1, start=1.0):
    return {"device_id": device_id, "failure_type": "DATA_STALL",
            "start_time": start, "duration_s": 5.0}


class TestBackoffSchedule:
    def test_success_resets_both_delay_and_gate(self):
        batcher = UploadBatcher(
            transport=Flaky([RuntimeError(), RuntimeError(), None]),
            base_backoff_s=2.0, backoff_multiplier=2.0, jitter=0.0,
        )
        batcher.enqueue(record(start=1.0))
        batcher.maybe_flush(True, now=0.0)
        assert batcher.next_attempt_s == pytest.approx(2.0)
        batcher.maybe_flush(True, now=2.0)
        assert batcher.next_attempt_s == pytest.approx(6.0)
        batcher.maybe_flush(True, now=6.0)   # acked
        assert batcher.pending_payloads == 0
        assert batcher.next_attempt_s == 0.0
        # The *delay* reset too, not just the gate: the next failure
        # starts the schedule over at base.
        batcher.transport = Flaky([RuntimeError()])
        batcher.enqueue(record(start=2.0))
        batcher.maybe_flush(True, now=10.0)
        assert batcher.next_attempt_s == pytest.approx(12.0)

    def test_delay_caps_at_max_backoff(self):
        batcher = UploadBatcher(
            transport=Flaky([RuntimeError()] * 30),
            base_backoff_s=1.0, backoff_multiplier=2.0, jitter=0.0,
            max_backoff_s=16.0, max_attempts=100,
        )
        batcher.enqueue(record())
        now = 0.0
        delays = []
        for _ in range(8):
            batcher.maybe_flush(True, now=now)
            delays.append(batcher.next_attempt_s - now)
            now = batcher.next_attempt_s
        assert delays[:5] == pytest.approx([1.0, 2.0, 4.0, 8.0, 16.0])
        assert delays[5:] == pytest.approx([16.0, 16.0, 16.0])

    def test_jitter_stays_inside_the_envelope_across_a_storm(self):
        """Across a seeded failure storm every armed delay lands in
        [backoff, backoff * (1 + jitter))."""
        jitter = 0.5
        batcher = UploadBatcher(
            transport=Flaky([RuntimeError()] * 40),
            base_backoff_s=2.0, backoff_multiplier=2.0, jitter=jitter,
            max_backoff_s=64.0, max_attempts=100,
            rng=random.Random("jitter-storm"),
        )
        batcher.enqueue(record())
        now = 0.0
        expected_backoff = 2.0
        observed = []
        for _ in range(40):
            batcher.maybe_flush(True, now=now)
            delay = batcher.next_attempt_s - now
            assert expected_backoff <= delay
            assert delay < expected_backoff * (1.0 + jitter)
            observed.append(delay / expected_backoff - 1.0)
            now = batcher.next_attempt_s
            expected_backoff = min(64.0, expected_backoff * 2.0)
        # The draws actually spread over the envelope (seeded, so this
        # is deterministic): not all stuck at one end.
        assert min(observed) < 0.1
        assert max(observed) > 0.4

    def test_gate_blocks_flush_without_a_transport_call(self):
        transport = Flaky([RuntimeError()])
        batcher = UploadBatcher(transport=transport,
                                base_backoff_s=10.0, jitter=0.0)
        batcher.enqueue(record())
        batcher.maybe_flush(True, now=0.0)
        calls = transport.calls
        batcher.maybe_flush(True, now=5.0)   # inside the window
        assert transport.calls == calls


class TestServerSignals:
    def test_longer_server_delay_overrides_the_local_draw(self):
        batcher = UploadBatcher(
            transport=Flaky([Backpressure(30.0)]),
            base_backoff_s=1.0, jitter=0.0,
        )
        batcher.enqueue(record())
        batcher.maybe_flush(True, now=100.0)
        assert batcher.retry_signals == 1
        assert batcher.next_attempt_s == pytest.approx(130.0)
        # The exponential schedule still advanced underneath.
        assert batcher._backoff_s == pytest.approx(2.0)

    def test_shorter_server_delay_defers_to_local_backoff(self):
        batcher = UploadBatcher(
            transport=Flaky([RuntimeError(), Backpressure(0.5)]),
            base_backoff_s=4.0, jitter=0.0,
        )
        batcher.enqueue(record())
        batcher.maybe_flush(True, now=0.0)    # local schedule: 4s
        batcher.maybe_flush(True, now=4.0)    # server suggests 0.5s
        assert batcher.retry_signals == 1
        # Local 8s beats the server's 0.5s hint.
        assert batcher.next_attempt_s == pytest.approx(12.0)

    def test_permanent_rejection_drops_and_keeps_flushing(self):
        registry = MetricsRegistry()
        first, second = record(start=1.0), record(start=2.0)
        batcher = UploadBatcher(transport=Flaky([Rejected()]))
        batcher.enqueue(first)
        size = batcher.enqueue(second)
        with use_registry(registry):
            flushed = batcher.maybe_flush(True, now=0.0)
        # The rejected head was dropped with accounting and the rest
        # of the spool flushed in the same call — no backoff armed.
        assert flushed == size
        assert batcher.pending_payloads == 0
        assert batcher.rejected_payloads == 1
        assert batcher.rejected_bytes > 0
        assert batcher.rejected_keys == [record_identity(first)]
        assert batcher.next_attempt_s == 0.0
        counters = registry.snapshot()["counters"]
        assert counters["uploader_rejected_total"] == 1
        assert counters["uploader_rejected_bytes_total"] == (
            batcher.rejected_bytes
        )

    def test_loss_byte_counters_reach_the_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            batcher = UploadBatcher(
                transport=Flaky([RuntimeError()] * 5),
                max_attempts=1, max_spool_bytes=1,
            )
            batcher.enqueue(record(start=1.0))
            shed_size = batcher.enqueue(record(start=2.0))  # sheds #1
            batcher.maybe_flush(True, now=0.0)  # budget-drops #2
        assert batcher.shed_payloads == 1
        assert batcher.budget_exhausted_payloads == 1
        counters = registry.snapshot()["counters"]
        assert counters["uploader_shed_bytes_total"] == (
            batcher.shed_bytes
        )
        assert counters["uploader_budget_exhausted_bytes_total"] == (
            shed_size
        )
        summary = batcher.summary()
        assert summary["shed_bytes"] == float(batcher.shed_bytes)
        assert summary["budget_exhausted_bytes"] == float(shed_size)
        assert summary["retry_signals"] == 0.0
