"""Tests for the chaos harness: fault-injecting transport, durable
spooling under faults, and end-to-end reconciliation."""

import json
import zlib

import pytest

from repro.backend.ingest import IngestionServer
from repro.chaos import (
    BackendUnavailable,
    ChaosConfig,
    ChaosTransport,
    PayloadDropped,
    mangle,
    reconcile,
    run_telemetry_pipeline,
)
from repro.dataset.records import FailureRecord, record_identity
from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.monitoring.uploader import UploadBatcher
from repro.network.topology import TopologyConfig


def make_record(device_id=1, start=100.0, duration=30.0) -> FailureRecord:
    return FailureRecord(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A", failure_type="DATA_STALL",
        start_time=start, duration_s=duration, bs_id=7, rat="4G",
        signal_level=3, deployment="URBAN",
    )


def make_dataset(n_devices=10, per_device=5) -> Dataset:
    dataset = Dataset()
    for device_id in range(1, n_devices + 1):
        for index in range(per_device):
            dataset.failures.append(make_record(
                device_id=device_id,
                start=100.0 * device_id + 10.0 * index,
                duration=10.0 + index,
            ))
    return dataset


def compress(data: dict) -> bytes:
    return zlib.compress(json.dumps(data, sort_keys=True,
                                    default=str).encode())


class TestChaosConfig:
    def test_defaults_are_valid(self):
        config = ChaosConfig()
        assert config.enabled
        assert config.outages == ()

    @pytest.mark.parametrize("field", [
        "drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate",
        "wifi_availability",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            ChaosConfig(**{field: -0.1})

    def test_empty_outage_window_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(outages=((100.0, 100.0),))

    def test_outages_normalized_to_float_tuples(self):
        config = ChaosConfig(outages=[[10, 20]])
        assert config.outages == ((10.0, 20.0),)

    def test_lossless_strips_every_fault(self):
        chaotic = ChaosConfig(drop_rate=0.3, duplicate_rate=0.2,
                              reorder_rate=0.1, corrupt_rate=0.05,
                              outages=((0.0, 10.0),), max_attempts=4)
        clean = chaotic.lossless()
        assert clean.drop_rate == 0.0
        assert clean.outages == ()
        assert clean.max_attempts == 4  # policy knobs survive


class TestMangle:
    def test_mangled_payload_cannot_decompress(self):
        payload = compress({"a": 1})
        with pytest.raises(zlib.error):
            zlib.decompress(mangle(payload))

    def test_mangle_empty(self):
        assert mangle(b"") == b"\xff"


class TestChaosTransport:
    def test_lossless_passthrough(self):
        received = []
        transport = ChaosTransport(received.append, ChaosConfig())
        for index in range(10):
            transport(compress({"n": index}))
        assert len(received) == 10
        assert transport.delivered == 10
        assert transport.sends == 10

    def test_drop_raises_and_counts(self):
        received = []
        transport = ChaosTransport(received.append,
                                   ChaosConfig(drop_rate=1.0))
        with pytest.raises(PayloadDropped):
            transport(b"payload")
        assert transport.dropped == 1
        assert received == []

    def test_duplicate_delivers_twice(self):
        received = []
        transport = ChaosTransport(received.append,
                                   ChaosConfig(duplicate_rate=1.0))
        transport(b"payload")
        assert received == [b"payload", b"payload"]
        assert transport.duplicated == 1

    def test_corruption_is_delivered_mangled_and_remembered(self):
        server = IngestionServer()
        transport = ChaosTransport(server.receive,
                                   ChaosConfig(corrupt_rate=1.0))
        payload = compress(make_record().to_dict())
        transport(payload)  # acked: no exception
        assert server.malformed == 1
        assert server.accepted == 0
        assert transport.corrupted_payloads == [payload]

    def test_outage_window_rejects_then_recovers(self):
        received = []
        transport = ChaosTransport(
            received.append, ChaosConfig(outages=((100.0, 200.0),))
        )
        transport.advance(50.0)
        transport(b"before")
        transport.advance(150.0)
        with pytest.raises(BackendUnavailable):
            transport(b"during")
        transport.advance(200.0)  # window end is exclusive
        transport(b"after")
        assert received == [b"before", b"after"]
        assert transport.outage_rejections == 1

    def test_time_never_moves_backward(self):
        transport = ChaosTransport(lambda p: None, ChaosConfig())
        transport.advance(100.0)
        transport.advance(50.0)
        assert transport.now == 100.0

    def test_reorder_holds_then_delivers_after_later_payload(self):
        received = []
        config = ChaosConfig(reorder_rate=1.0)
        transport = ChaosTransport(received.append, config)
        transport(b"first")  # held, but acked
        assert received == []
        assert transport.held_payloads == (b"first",)
        # Force the next send through: a fresh transport rng draw will
        # hold it too at rate 1.0, so flush explicitly instead.
        assert transport.flush_held() == 1
        assert received == [b"first"]

    def test_reorder_flush_rehelds_on_backend_error(self):
        server = IngestionServer()
        transport = ChaosTransport(server.receive,
                                   ChaosConfig(reorder_rate=1.0))
        payload = compress(make_record().to_dict())
        transport(payload)
        server.take_down()
        with pytest.raises(Exception):
            transport.flush_held()
        assert transport.held_payloads == (payload,)
        server.bring_up()
        transport.flush_held()
        assert server.accepted == 1

    def test_same_seed_same_fault_sequence(self):
        def run():
            received = []
            config = ChaosConfig(seed=99, drop_rate=0.4,
                                 duplicate_rate=0.3)
            transport = ChaosTransport(received.append, config)
            outcomes = []
            for index in range(50):
                try:
                    transport(bytes([index]))
                    outcomes.append("ack")
                except PayloadDropped:
                    outcomes.append("drop")
            return outcomes, received

        assert run() == run()


class TestReconcile:
    def test_classifies_every_loss_channel(self):
        server = IngestionServer()
        accepted = make_record(device_id=1).to_dict()
        server.ingest_record(accepted)

        batcher = UploadBatcher()
        shed_key = record_identity(make_record(device_id=2).to_dict())
        budget_key = record_identity(make_record(device_id=3).to_dict())
        pending = make_record(device_id=4).to_dict()
        batcher.shed_keys.append(shed_key)
        batcher.budget_exhausted_keys.append(budget_key)
        batcher.enqueue(pending)

        emitted = {
            record_identity(accepted), shed_key, budget_key,
            record_identity(pending),
        }
        report = reconcile(emitted, server, [batcher])
        assert report.emitted == 4
        assert report.accepted == 1
        assert report.shed == 1
        assert report.budget_exhausted == 1
        assert report.in_flight == 1
        assert report.quarantined == 0
        assert report.ok
        assert report.explained_losses == 3

    def test_unexplained_loss_is_flagged(self):
        server = IngestionServer()
        ghost = record_identity(make_record().to_dict())
        report = reconcile({ghost}, server, [])
        assert not report.ok
        assert report.unexplained == (ghost,)
        assert "UNEXPLAINED" in report.render()

    def test_report_to_dict_is_json_able(self):
        server = IngestionServer()
        report = reconcile(set(), server, [UploadBatcher()])
        payload = json.dumps(report.to_dict())
        assert json.loads(payload)["emitted"] == 0


class TestTelemetryPipeline:
    def test_lossless_run_accepts_everything(self):
        dataset = make_dataset()
        result = run_telemetry_pipeline(dataset, ChaosConfig())
        report = result.report
        assert report.emitted == len(dataset.failures)
        assert report.accepted == report.emitted
        assert report.ok
        assert result.server.accepted == report.emitted

    def test_chaotic_run_reconciles_cleanly(self):
        dataset = make_dataset(n_devices=20, per_device=8)
        chaos = ChaosConfig(
            seed=5, drop_rate=0.3, duplicate_rate=0.2,
            reorder_rate=0.1, corrupt_rate=0.05,
        )
        report = run_telemetry_pipeline(dataset, chaos).report
        assert report.ok
        assert report.accepted == (
            report.emitted - report.explained_losses
        )

    def test_retries_recover_from_pure_drop(self):
        dataset = make_dataset(n_devices=15, per_device=6)
        chaos = ChaosConfig(seed=11, drop_rate=0.3)
        result = run_telemetry_pipeline(dataset, chaos)
        assert result.report.accepted == result.report.emitted
        assert result.transport.dropped > 0
        assert sum(attempts * count for attempts, count
                   in result.report.retry_histogram.items()) > 0

    def test_outage_recovers_in_drain(self):
        dataset = make_dataset(n_devices=10, per_device=6)
        starts = [record.start_time for record in dataset.failures]
        outage = (min(starts), max(starts) + 1.0)  # down all run long
        chaos = ChaosConfig(seed=3, outages=(outage,),
                            max_attempts=50)
        result = run_telemetry_pipeline(dataset, chaos)
        assert result.transport.outage_rejections > 0
        assert result.report.ok
        assert result.report.accepted == result.report.emitted

    def test_dedup_holds_under_duplication(self):
        dataset = make_dataset(n_devices=12, per_device=6)
        chaos = ChaosConfig(seed=8, duplicate_rate=0.5)
        result = run_telemetry_pipeline(dataset, chaos)
        server = result.server
        assert server.duplicates > 0
        assert server.accepted == result.report.emitted
        assert sum(stats.count
                   for stats in server.duration_stats.values()
                   ) == server.accepted

    def test_pipeline_is_deterministic(self):
        dataset = make_dataset(n_devices=8, per_device=5)
        chaos = ChaosConfig(seed=21, drop_rate=0.25,
                            duplicate_rate=0.15, corrupt_rate=0.05)
        first = run_telemetry_pipeline(dataset, chaos)
        second = run_telemetry_pipeline(dataset, chaos)
        assert first.report.to_dict() == second.report.to_dict()


class TestScenarioWiring:
    def test_fleet_run_with_chaos_block(self):
        chaos = ChaosConfig(seed=2, drop_rate=0.2, duplicate_rate=0.1)
        scenario = ScenarioConfig(
            n_devices=40, seed=9,
            topology=TopologyConfig(n_base_stations=200, seed=10),
            chaos=chaos,
        )
        simulator = FleetSimulator(scenario)
        dataset = simulator.run()
        assert simulator.telemetry is not None
        report = simulator.telemetry.report
        assert report.ok
        assert report.emitted == len(
            {record_identity(record.to_dict())
             for record in dataset.failures}
        )
        summary = dataset.metadata["telemetry"]
        assert summary["reconciliation"]["unexplained"] == []
        json.dumps(summary)  # metadata must stay JSON-able

    def test_disabled_chaos_is_skipped(self):
        scenario = ScenarioConfig(
            n_devices=10, seed=9,
            topology=TopologyConfig(n_base_stations=20, seed=10),
            chaos=ChaosConfig(enabled=False, drop_rate=0.5),
        )
        simulator = FleetSimulator(scenario)
        dataset = simulator.run()
        assert simulator.telemetry is None
        assert "telemetry" not in dataset.metadata

    def test_no_chaos_block_keeps_legacy_behaviour(self):
        scenario = ScenarioConfig(
            n_devices=10, seed=9,
            topology=TopologyConfig(n_base_stations=20, seed=10),
        )
        simulator = FleetSimulator(scenario)
        simulator.run()
        assert simulator.telemetry is None
