"""Unit tests for the modem command surface."""

import random

import pytest

from repro.core.signal import SignalLevel
from repro.radio.modem import Modem, ModemResponse, SetupOutcome
from repro.radio.rat import RAT


class AlwaysAdmit:
    def admit_bearer(self, rat, signal_level, rng):
        return None


class AlwaysReject:
    def __init__(self, cause="NETWORK_FAILURE"):
        self.cause = cause

    def admit_bearer(self, rat, signal_level, rng):
        return self.cause


def make_modem(**kwargs) -> Modem:
    defaults = dict(
        supported_rats={RAT.GSM, RAT.UMTS, RAT.LTE},
        rng=random.Random(3),
        internal_error_rate=0.0,
        deep_fade_timeout_rate=0.0,
    )
    defaults.update(kwargs)
    return Modem(**defaults)


class TestModemResponse:
    def test_success_has_no_cause(self):
        response = ModemResponse(SetupOutcome.SUCCESS)
        assert response.ok
        assert response.cause is None

    def test_success_with_cause_rejected(self):
        with pytest.raises(ValueError):
            ModemResponse(SetupOutcome.SUCCESS, cause="SIGNAL_LOST")

    def test_failure_requires_cause(self):
        with pytest.raises(ValueError):
            ModemResponse(SetupOutcome.REJECTED)

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValueError):
            ModemResponse(SetupOutcome.REJECTED, cause="BOGUS_CAUSE")


class TestSetupDataCall:
    def test_successful_setup(self):
        response = make_modem().setup_data_call(
            AlwaysAdmit(), RAT.LTE, SignalLevel.LEVEL_4
        )
        assert response.ok
        assert response.latency_s > 0

    def test_network_rejection_surfaces_the_cause(self):
        response = make_modem().setup_data_call(
            AlwaysReject("INVALID_EMM_STATE"), RAT.LTE, SignalLevel.LEVEL_3
        )
        assert response.outcome is SetupOutcome.REJECTED
        assert response.cause == "INVALID_EMM_STATE"

    def test_unsupported_rat_fails_in_modem(self):
        response = make_modem().setup_data_call(
            AlwaysAdmit(), RAT.NR, SignalLevel.LEVEL_4
        )
        assert response.outcome is SetupOutcome.MODEM_ERROR
        assert response.cause == "FEATURE_NOT_SUPP"

    def test_radio_off_fails_with_power_cause(self):
        modem = make_modem()
        modem.power_off()
        response = modem.setup_data_call(
            AlwaysAdmit(), RAT.LTE, SignalLevel.LEVEL_4
        )
        assert response.cause == "RADIO_POWER_OFF"

    def test_deep_fade_can_time_out(self):
        modem = make_modem(deep_fade_timeout_rate=1.0)
        response = modem.setup_data_call(
            AlwaysAdmit(), RAT.LTE, SignalLevel.LEVEL_0
        )
        assert response.outcome is SetupOutcome.TIMEOUT
        assert response.cause == "SIGNAL_LOST"

    def test_internal_error_path(self):
        modem = make_modem(internal_error_rate=1.0)
        response = modem.setup_data_call(
            AlwaysAdmit(), RAT.LTE, SignalLevel.LEVEL_4
        )
        assert response.outcome is SetupOutcome.MODEM_ERROR
        assert response.cause is not None

    def test_nr_setup_faster_than_gsm(self):
        modem = make_modem(
            supported_rats={RAT.GSM, RAT.NR}, rng=random.Random(0)
        )
        gsm = [
            modem.setup_data_call(AlwaysAdmit(), RAT.GSM,
                                  SignalLevel.LEVEL_4).latency_s
            for _ in range(50)
        ]
        nr = [
            modem.setup_data_call(AlwaysAdmit(), RAT.NR,
                                  SignalLevel.LEVEL_4).latency_s
            for _ in range(50)
        ]
        assert sum(nr) / len(nr) < sum(gsm) / len(gsm)


class TestRadioLifecycle:
    def test_restart_counts_and_reenables(self):
        modem = make_modem()
        modem.power_off()
        elapsed = modem.restart_radio()
        assert modem.radio_on
        assert modem.restart_count == 1
        assert elapsed > 0

    def test_teardown_succeeds(self):
        assert make_modem().teardown_data_call().ok

    def test_empty_rat_set_rejected(self):
        with pytest.raises(ValueError):
            Modem(set(), random.Random(0))
