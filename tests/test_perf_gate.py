"""Tests for the CI perf-regression gate (``tools/perf_gate.py``).

The acceptance-level property: the gate is green on an unchanged
baseline and demonstrably fails when a tracked counter is perturbed
beyond tolerance.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from perf_gate import (  # noqa: E402
    DEFAULT_THRESHOLDS,
    compare,
    main,
    make_baseline,
)


def snapshot_fixture() -> dict:
    return {
        "benchmark": "perf_gate_snapshot",
        "scenario": {"n_devices": 400, "seed": 7, "n_base_stations": 400},
        "environment": {"python": "3.11.7"},
        "record_digest": "a" * 64,
        "all_records_identical": True,
        "counters": {
            "fleet_devices_total": 400,
            "fleet_failures_total{type=\"data_stall\"}": 1200,
        },
        "gauges": {},
        "durations": {"serial_wall_s": 1.0, "workers_2_wall_s": 1.2},
    }


@pytest.fixture
def baseline() -> dict:
    return make_baseline(snapshot_fixture())


class TestCompare:
    def test_unchanged_snapshot_passes(self, baseline):
        assert compare(baseline, snapshot_fixture()) == []

    def test_small_drift_within_tolerance_passes(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["counters"]["fleet_failures_total{type=\"data_stall\"}"] = (
            1212)  # +1%, under the 2% tolerance
        assert compare(baseline, snapshot) == []

    def test_perturbed_counter_fails(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["counters"]["fleet_devices_total"] = 460  # +15%
        problems = compare(baseline, snapshot)
        assert any("counter drift" in p and "fleet_devices_total" in p
                   for p in problems)

    def test_disappeared_and_new_counters_fail(self, baseline):
        snapshot = snapshot_fixture()
        del snapshot["counters"]["fleet_devices_total"]
        snapshot["counters"]["surprise_total"] = 1
        problems = compare(baseline, snapshot)
        assert any("disappeared" in p for p in problems)
        assert any("new counter" in p for p in problems)

    def test_determinism_break_fails(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["all_records_identical"] = False
        assert any("all_records_identical" in p
                   for p in compare(baseline, snapshot))

    def test_wall_time_blowup_fails(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["durations"]["serial_wall_s"] = 100.0
        assert any("duration regression" in p
                   for p in compare(baseline, snapshot))

    def test_wall_time_under_ratio_passes(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["durations"]["serial_wall_s"] = 2.5  # < 3x default
        assert compare(baseline, snapshot) == []

    def test_batch_speedup_below_minimum_fails(self, baseline):
        baseline["thresholds"]["min_batch_speedup"] = 20.0
        snapshot = snapshot_fixture()
        snapshot["durations"]["batch_speedup_vs_serial"] = 12.0
        assert any("batch throughput regression" in p
                   for p in compare(baseline, snapshot))

    def test_batch_speedup_above_minimum_passes(self, baseline):
        baseline["thresholds"]["min_batch_speedup"] = 20.0
        snapshot = snapshot_fixture()
        snapshot["durations"]["batch_speedup_vs_serial"] = 26.0
        snapshot["durations"]["batch_wall_s"] = 0.1
        assert compare(baseline, snapshot) == []

    def test_required_batch_speedup_missing_fails(self, baseline):
        baseline["thresholds"]["min_batch_speedup"] = 20.0
        assert any("batch_speedup_vs_serial" in p
                   for p in compare(baseline, snapshot_fixture()))

    def test_batch_check_disabled_by_default(self, baseline):
        # No min_batch_speedup in the baseline -> serial-only snapshots
        # pass untouched.
        assert compare(baseline, snapshot_fixture()) == []

    def test_degraded_duration_keys_not_gated(self, baseline):
        snapshot = snapshot_fixture()
        del snapshot["durations"]["workers_2_wall_s"]
        snapshot["durations"]["workers_2_wall_s_degraded"] = 500.0
        assert compare(baseline, snapshot) == []

    def test_sweep_wall_time_gated(self, baseline):
        # sweep_wall_s is a tracked duration: a blowup beyond the
        # ratio fails even though legacy baselines never carried it.
        baseline["durations"]["sweep_wall_s"] = 10.0
        snapshot = snapshot_fixture()
        snapshot["durations"]["sweep_wall_s"] = 100.0
        assert any("sweep_wall_s" in p
                   for p in compare(baseline, snapshot))
        snapshot["durations"]["sweep_wall_s"] = 12.0  # < 3x
        assert compare(baseline, snapshot) == []

    def test_scenario_mismatch_short_circuits(self, baseline):
        snapshot = snapshot_fixture()
        snapshot["scenario"]["n_devices"] = 999
        problems = compare(baseline, snapshot)
        assert len(problems) == 1 and "scenario mismatch" in problems[0]

    def test_digest_check_opt_in(self):
        base = make_baseline(snapshot_fixture(),
                             thresholds={"require_digest_match": True})
        snapshot = snapshot_fixture()
        snapshot["record_digest"] = "b" * 64
        assert any("digest" in p for p in compare(base, snapshot))
        # Off by default: same perturbation passes.
        relaxed = make_baseline(snapshot_fixture())
        assert compare(relaxed, snapshot) == []


class TestMakeBaseline:
    def test_carries_thresholds_and_counters(self):
        document = make_baseline(snapshot_fixture())
        assert document["thresholds"] == DEFAULT_THRESHOLDS
        assert document["counters"]["fleet_devices_total"] == 400


class TestMain:
    def _write(self, path, document):
        path.write_text(json.dumps(document))
        return str(path)

    def test_green_on_unchanged_baseline(self, tmp_path, baseline):
        base = self._write(tmp_path / "baseline.json", baseline)
        snap = self._write(tmp_path / "snap.json", snapshot_fixture())
        assert main(["--baseline", base, "--snapshot", snap]) == 0

    def test_exit_1_on_regression(self, tmp_path, baseline):
        snapshot = snapshot_fixture()
        snapshot["counters"]["fleet_devices_total"] = 460
        base = self._write(tmp_path / "baseline.json", baseline)
        snap = self._write(tmp_path / "snap.json", snapshot)
        assert main(["--baseline", base, "--snapshot", snap]) == 1

    def test_override_flag_turns_failure_into_warning(self, tmp_path,
                                                      baseline):
        snapshot = snapshot_fixture()
        snapshot["counters"]["fleet_devices_total"] = 460
        base = self._write(tmp_path / "baseline.json", baseline)
        snap = self._write(tmp_path / "snap.json", snapshot)
        assert main(["--baseline", base, "--snapshot", snap,
                     "--override"]) == 0

    def test_override_env_var(self, tmp_path, baseline, monkeypatch):
        monkeypatch.setenv("PERF_GATE_OVERRIDE", "1")
        snapshot = snapshot_fixture()
        snapshot["counters"]["fleet_devices_total"] = 460
        base = self._write(tmp_path / "baseline.json", baseline)
        snap = self._write(tmp_path / "snap.json", snapshot)
        assert main(["--baseline", base, "--snapshot", snap]) == 0

    def test_missing_snapshot_exits_2(self, tmp_path):
        assert main(["--snapshot", str(tmp_path / "nope.json")]) == 2

    def test_write_baseline_blesses_snapshot(self, tmp_path):
        snap = self._write(tmp_path / "snap.json", snapshot_fixture())
        out = tmp_path / "new_baseline.json"
        assert main(["--snapshot", snap,
                     "--write-baseline", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["benchmark"] == "perf_gate_baseline"
        # And the blessed baseline gates its own snapshot green.
        assert main(["--baseline", str(out), "--snapshot", snap]) == 0


class TestCommittedBaseline:
    def test_repo_baseline_is_wellformed(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
        document = json.loads(path.read_text())
        assert document["benchmark"] == "perf_gate_baseline"
        assert document["counters"]
        assert set(DEFAULT_THRESHOLDS) <= set(document["thresholds"])
        assert "serial_wall_s" in document["durations"]

    def test_repo_sweep_baseline_is_wellformed(self):
        path = (Path(__file__).resolve().parent.parent
                / "BENCH_baseline_sweep.json")
        document = json.loads(path.read_text())
        assert document["benchmark"] == "perf_gate_baseline"
        assert document["counters"]
        assert "sweep_wall_s" in document["durations"]
        # The baseline is pinned to the bundled CI packs by content
        # fingerprint; editing a pack must force a baseline refresh.
        fingerprints = document["scenario"]["fingerprints"]
        assert set(document["scenario"]["packs"]) == set(fingerprints)
