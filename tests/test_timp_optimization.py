"""Tests for Eq. (1), the mechanism objective, and annealing."""

import random

import numpy as np
import pytest

from repro.timp.annealing import AnnealingResult, anneal, optimize_probations
from repro.timp.expected_time import (
    expected_recovery_time,
    mechanism_expected_duration,
    simulate_expected_recovery_time,
)
from repro.timp.model import RecoveryCdf, TimpModel


def quick_model() -> TimpModel:
    # 60% of stalls clear within ~10 s, the rest spread out — the
    # Fig. 10 shape in miniature.
    rng = np.random.RandomState(0)
    fast = rng.lognormal(np.log(3.0), 0.7, 600)
    slow = rng.lognormal(np.log(150.0), 1.0, 400)
    return TimpModel(
        recovery_cdf=RecoveryCdf.from_durations(
            np.concatenate([fast, slow])
        )
    )


class TestEquationOne:
    def test_value_is_positive_and_finite(self):
        model = quick_model()
        value = expected_recovery_time(model, (60.0, 60.0, 60.0))
        assert 0.0 < value < 1e4

    def test_validation(self):
        model = quick_model()
        with pytest.raises(ValueError):
            expected_recovery_time(model, (60.0, 60.0))  # type: ignore
        with pytest.raises(ValueError):
            expected_recovery_time(model, (-1.0, 60.0, 60.0))

    def test_horizon_extends_for_long_probations(self):
        model = quick_model()
        # sigma beyond the default horizon must not crash.
        value = expected_recovery_time(model, (120.0, 120.0, 120.0),
                                       t_max=100.0)
        assert value > 0


class TestMechanismObjective:
    def test_matches_monte_carlo(self):
        """The closed-form expectation must agree with simulating the
        real recovery engine (without annoyance, same stage params)."""
        model = quick_model()
        naturals = model.recovery_cdf.sample_naturals(3_000)
        probations = (21.0, 6.0, 16.0)
        closed = mechanism_expected_duration(
            probations, naturals,
            stage_success_rates=(0.75, 0.85, 0.95),
            annoyance_cost_s=(0.0, 0.0, 0.0),
        )
        simulated = simulate_expected_recovery_time(
            probations, naturals, random.Random(0), samples=4_000
        )
        assert closed == pytest.approx(simulated, rel=0.15)

    def test_vanilla_probations_are_suboptimal(self):
        model = quick_model()
        naturals = model.recovery_cdf.sample_naturals(3_000)
        vanilla = mechanism_expected_duration((60.0, 60.0, 60.0),
                                              naturals)
        timp = mechanism_expected_duration((21.0, 6.0, 16.0), naturals)
        assert timp < vanilla

    def test_validation(self):
        with pytest.raises(ValueError):
            mechanism_expected_duration((1.0, 1.0, 1.0), np.array([]))
        with pytest.raises(ValueError):
            mechanism_expected_duration((-1.0, 1.0, 1.0),
                                        np.array([10.0]))


class TestAnnealing:
    def test_minimizes_a_known_bowl(self):
        target = (20.0, 10.0, 15.0)

        def bowl(v):
            return sum((a - b) ** 2 for a, b in zip(v, target))

        best, value, evaluations = anneal(
            bowl, random.Random(0), steps=3_000
        )
        assert value < 5.0
        assert evaluations > 1_000

    def test_cooling_validation(self):
        with pytest.raises(ValueError):
            anneal(lambda v: 0.0, random.Random(0), cooling=1.5)

    def test_respects_bounds(self):
        best, _value, _ = anneal(
            lambda v: -sum(v), random.Random(0),
            bounds=(1.0, 50.0), steps=500,
        )
        assert all(1.0 <= p <= 50.0 for p in best)


class TestOptimizeProbations:
    def test_reproduces_the_papers_shape(self):
        """Sec. 4.2's qualitative result: every optimal probation is far
        below vanilla's 60 s and the expected recovery time improves."""
        result = optimize_probations(quick_model(),
                                     rng=random.Random(7), steps=2_000)
        assert isinstance(result, AnnealingResult)
        assert all(p < 40.0 for p in result.best_probations_s)
        assert result.best_value < result.default_value
        assert result.improvement > 0.10

    def test_eq1_objective_also_runs(self):
        result = optimize_probations(
            quick_model(), rng=random.Random(7), steps=400,
            objective_kind="eq1",
        )
        assert result.best_value <= result.default_value

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            optimize_probations(quick_model(), objective_kind="magic")

    def test_optimized_trigger_improves_real_recoveries(self):
        """End-to-end: the annealed probations shorten Monte-Carlo
        stall durations through the actual recovery engine."""
        model = quick_model()
        result = optimize_probations(model, rng=random.Random(3),
                                     steps=1_500)
        naturals = model.recovery_cdf.sample_naturals(1_000)
        optimized = simulate_expected_recovery_time(
            result.best_probations_s, naturals, random.Random(1),
            samples=2_000,
        )
        vanilla = simulate_expected_recovery_time(
            (60.0, 60.0, 60.0), naturals, random.Random(1),
            samples=2_000,
        )
        assert optimized < vanilla
