"""Unit tests for the Android-MOD network-state prober (Sec. 2.2)."""

import pytest

from repro.core.events import ProbeVerdict
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.simtime import SimClock


def make(fault: FaultKind | None = None, duration: float = 100.0):
    clock = SimClock()
    stack = DeviceNetStack()
    if fault is not None:
        stack.inject_fault(ActiveFault(fault, start=0.0,
                                       duration=duration))
    return clock, stack, NetworkStateProber(clock)


class TestSingleVolley:
    def test_healthy_stack_means_recovered(self):
        clock, stack, prober = make()
        result = prober.probe_once(stack, 1.0, 5.0)
        assert result.verdict is ProbeVerdict.RECOVERED
        assert result.elapsed_s < 1.0

    def test_network_stall_verdict(self):
        clock, stack, prober = make(FaultKind.NETWORK_STALL)
        result = prober.probe_once(stack, 1.0, 5.0)
        assert result.verdict is ProbeVerdict.NETWORK_SIDE_STALL
        # The DNS query timeout dominates the volley (Sec. 2.2: <= 5 s).
        assert result.elapsed_s == 5.0

    @pytest.mark.parametrize("fault", [
        FaultKind.FIREWALL_MISCONFIG,
        FaultKind.PROXY_MISCONFIG,
        FaultKind.MODEM_DRIVER_FAILURE,
    ])
    def test_system_side_verdicts(self, fault):
        clock, stack, prober = make(fault)
        result = prober.probe_once(stack, 1.0, 5.0)
        assert result.verdict is ProbeVerdict.SYSTEM_SIDE_FAULT

    def test_dns_outage_verdict(self):
        """DNS queries time out, DNS-server ICMP succeeds (Sec. 2.2)."""
        clock, stack, prober = make(FaultKind.DNS_OUTAGE)
        result = prober.probe_once(stack, 1.0, 5.0)
        assert result.verdict is ProbeVerdict.DNS_SERVICE_FAULT

    def test_every_fault_kind_gets_its_expected_verdict(self):
        for fault in FaultKind:
            clock, stack, prober = make(fault)
            result = prober.probe_once(stack, 1.0, 5.0)
            assert result.verdict is fault.expected_verdict, fault


class TestFullMeasurement:
    def test_measures_short_stall_within_5s_error(self):
        """Sec. 2.2: measurement error is at most one volley (5 s)."""
        clock, stack, prober = make(FaultKind.NETWORK_STALL,
                                    duration=42.0)
        measurement = prober.measure(stack)
        assert measurement.verdict is ProbeVerdict.RECOVERED
        assert 42.0 <= measurement.duration_s <= 47.1
        assert not measurement.reverted_to_vanilla

    def test_false_positive_resolves_in_one_round(self):
        clock, stack, prober = make(FaultKind.FIREWALL_MISCONFIG)
        measurement = prober.measure(stack)
        assert measurement.verdict is ProbeVerdict.SYSTEM_SIDE_FAULT
        assert measurement.rounds == 1

    def test_backoff_kicks_in_after_1200s(self):
        clock, stack, prober = make(FaultKind.NETWORK_STALL,
                                    duration=1_230.0)
        measurement = prober.measure(stack)
        assert measurement.verdict is ProbeVerdict.RECOVERED
        # Backed-off rounds are coarser than 5 s but fewer overall.
        assert measurement.rounds < 1_230 / 5
        assert not measurement.reverted_to_vanilla
        assert 1_230.0 <= measurement.duration_s <= 1_330.0

    def test_very_long_stall_reverts_to_vanilla(self):
        """Once a timeout would exceed a minute, fall back to the
        one-minute detection cadence (Sec. 2.2)."""
        clock, stack, prober = make(FaultKind.NETWORK_STALL,
                                    duration=30_000.0)
        measurement = prober.measure(stack)
        assert measurement.reverted_to_vanilla
        assert measurement.duration_s >= 30_000.0
        # Vanilla granularity: error up to a minute.
        assert measurement.duration_s <= 30_000.0 + 120.0

    def test_probe_bytes_accounted(self):
        clock, stack, prober = make(FaultKind.NETWORK_STALL,
                                    duration=42.0)
        measurement = prober.measure(stack)
        assert measurement.probe_bytes > 0

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ValueError):
            NetworkStateProber(SimClock(), icmp_timeout_s=0.0)
