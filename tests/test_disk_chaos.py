"""Disk-fault injection, scrub classification, and reconciliation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.columnar import compute_analysis_block
from repro.chaos import (
    DiskChaos,
    DiskChaosConfig,
    SimulatedCrash,
    reconcile_disk,
)
from repro.dataset.records import FailureRecord
from repro.dataset.store import Dataset
from repro.serve.harness import synthetic_records
from repro.store import SegmentStore

ALL_FAULTS = ("torn-write", "bit-flip", "enospc", "crash-rename",
              "journal-torn", "journal-flip")


def _store(tmp_path, io=None, wal=True):
    return SegmentStore(tmp_path / "store", seal_records=10,
                        device_bucket=4, time_bucket_s=240.0,
                        io=io, wal=wal)


def _append_with_retries(store, record, attempts=5):
    for _ in range(attempts):
        try:
            store.append(record)
            return
        except (SimulatedCrash, OSError):
            continue
    raise AssertionError("append never succeeded")


class TestDiskChaosInjector:
    def test_disabled_config_injects_nothing(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=1))
        store = _store(tmp_path, io=chaos)
        for r in synthetic_records(6, 4, seed=2):
            store.append(r)
        store.flush()
        assert chaos.injected == []
        assert store.scrub().clean

    def test_forced_faults_fire_in_order(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=1))
        chaos.force_next("enospc", "journal-flip")
        with pytest.raises(OSError):
            chaos.write_atomic(tmp_path / "f", b"payload")
        chaos.append_line(tmp_path / "j", b"line")
        assert [e["fault"] for e in chaos.injected] == [
            "enospc", "journal-flip",
        ]

    def test_unknown_forced_kind_rejected(self):
        chaos = DiskChaos(DiskChaosConfig(seed=1))
        with pytest.raises(ValueError):
            chaos.force_next("meteor-strike")

    def test_bit_flip_lands_on_disk(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=3))
        chaos.force_next("bit-flip")
        chaos.write_atomic(tmp_path / "f", b"\x00" * 64)
        written = (tmp_path / "f").read_bytes()
        assert written != b"\x00" * 64
        assert sum(bin(b).count("1") for b in written) == 1

    def test_torn_write_is_a_prefix(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=3))
        chaos.force_next("torn-write")
        payload = bytes(range(256))
        chaos.write_atomic(tmp_path / "f", payload)
        written = (tmp_path / "f").read_bytes()
        assert 0 < len(written) < len(payload)
        assert payload.startswith(written)

    def test_crash_rename_leaves_orphan_temp(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=3))
        chaos.force_next("crash-rename")
        with pytest.raises(SimulatedCrash):
            chaos.write_atomic(tmp_path / "f", b"payload")
        assert not (tmp_path / "f").exists()
        temp = chaos.injected[0]["temp"]
        assert (tmp_path / temp).name.startswith("f.tmp")

    def test_torn_journal_line_heals_on_next_append(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=3))
        journal = tmp_path / "j"
        chaos.append_line(journal, b"first")
        chaos.force_next("journal-torn")
        with pytest.raises(SimulatedCrash):
            chaos.append_line(journal, b"second-torn-away")
        assert not journal.read_bytes().endswith(b"\n")
        # The retry must not merge into the torn fragment.
        chaos.append_line(journal, b"third")
        lines = journal.read_bytes().splitlines()
        assert lines[0] == b"first"
        assert lines[-1] == b"third"


class TestScrubUnderChaos:
    def test_every_fault_classified_and_rebuild_is_exact(self, tmp_path):
        """The acceptance loop: one of each fault kind, then scrub +
        reconcile + re-upload must rebuild the exact analysis."""
        records = synthetic_records(16, 8, seed=5)
        direct = compute_analysis_block(Dataset(failures=[
            FailureRecord.from_dict(r) for r in records
        ]))
        chaos = DiskChaos(DiskChaosConfig(seed=11))
        store = _store(tmp_path, io=chaos)
        fault_at = iter(range(4, len(records), 9))
        next_fault = next(fault_at)
        kinds = iter(ALL_FAULTS)
        for i, record in enumerate(records):
            if i == next_fault:
                kind = next(kinds, None)
                if kind is not None:
                    chaos.force_next(kind)
                    next_fault = next(fault_at, -1)
            _append_with_retries(store, record)
        assert chaos.summary() == {kind: 1 for kind in ALL_FAULTS}

        # "Restart" after the chaotic run: reload from disk, scrub.
        reloaded = _store(tmp_path)
        report = reloaded.scrub(repair=True)
        disk = reconcile_disk(chaos.injected, report)
        assert disk.ok, disk.render()
        assert {f["fault"] for f in disk.faults} == set(ALL_FAULTS)

        # A flipped WAL line can lose an unsealed record's only copy;
        # the dedup layer invites re-uploads, modeled here by the
        # idempotent re-append of the full set.
        for record in records:
            reloaded.append(record)
        reloaded.flush()
        query = reloaded.fold_analysis()
        assert query.complete, query.skipped
        assert (json.dumps(query.block, sort_keys=True)
                == json.dumps(direct, sort_keys=True))
        # Repair converged: a further scrub finds no new damage.
        final = reloaded.scrub()
        assert final.ok and not final.quarantined

    def test_reconcile_flags_unexplained_faults(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=7))
        store = _store(tmp_path, io=chaos)
        for r in synthetic_records(6, 4, seed=2):
            store.append(r)
        store.flush()
        clean_report = store.scrub()
        # A fabricated fault the scrub never saw must be flagged.
        chaos.injected.append({
            "fault": "bit-flip",
            "path": str(store.segments_dir / "seg-t0-d0-000000.seg"),
            "bit": 12,
        })
        disk = reconcile_disk(chaos.injected, clean_report)
        assert not disk.ok
        assert len(disk.unexplained) == 1

    def test_enospc_retains_tail_and_retries(self, tmp_path):
        chaos = DiskChaos(DiskChaosConfig(seed=9))
        store = _store(tmp_path, io=chaos)
        records = synthetic_records(4, 5, seed=3)
        chaos.force_next("enospc")
        for r in records:
            _append_with_retries(store, r)
        store.flush()  # the retried seal succeeds
        assert store.n_sealed_records + store.n_tail_records == len(records)
        report = store.scrub()
        disk = reconcile_disk(chaos.injected, report)
        assert disk.ok
        assert disk.by_class.get("retained") == 1

    def test_commit_fault_retry_never_reuses_segment_name(self, tmp_path):
        """A seal whose segment write was torn and whose commit append
        then crashed leaves a damaged file behind; the retried seal
        must write under a fresh name so the orphan survives for scrub
        to classify — overwriting it in place would leave the injected
        fault unexplained."""
        records = synthetic_records(4, 5, seed=3)
        direct = compute_analysis_block(Dataset(failures=[
            FailureRecord.from_dict(r) for r in records
        ]))
        chaos = DiskChaos(DiskChaosConfig(seed=19))
        store = _store(tmp_path, io=chaos)
        # The queued torn-write waits for the next segment write (the
        # first seal), the journal-torn behind it then hits that
        # seal's commit append: torn segment + crash mid-commit.
        chaos.force_next("torn-write", "journal-torn")
        for r in records:
            _append_with_retries(store, r)
        for _ in range(5):
            try:
                store.flush()
                break
            except SimulatedCrash:
                continue
        assert chaos.summary() == {"torn-write": 1, "journal-torn": 1}

        reloaded = _store(tmp_path)
        report = reloaded.scrub(repair=True)
        disk = reconcile_disk(chaos.injected, report)
        assert disk.ok, disk.render()
        # The torn first attempt is a corrupt uncommitted orphan.
        assert disk.by_class.get("superseded") == 1
        query = reloaded.fold_analysis()
        assert query.complete, query.skipped
        assert (json.dumps(query.block, sort_keys=True)
                == json.dumps(direct, sort_keys=True))
        # Repair converged: only the healed torn-commit fragment (a
        # complete CRC-failing line) remains, no new damage.
        final = reloaded.scrub()
        assert final.ok and not final.quarantined and not final.superseded

    def test_uniform_rate_soak_never_loses_acked_records(self, tmp_path):
        """Random faults at a high rate: after scrub + re-upload the
        store owns every record exactly once."""
        records = synthetic_records(12, 6, seed=13)
        chaos = DiskChaos(DiskChaosConfig.uniform(0.08, seed=17))
        store = _store(tmp_path, io=chaos)
        for r in records:
            _append_with_retries(store, r, attempts=10)
        reloaded = _store(tmp_path)
        report = reloaded.scrub(repair=True)
        disk = reconcile_disk(chaos.injected, report)
        assert disk.ok, disk.render()
        for r in records:
            reloaded.append(r)
        reloaded.flush()
        assert len(reloaded.known_keys()) == len(records)
        query = reloaded.fold_analysis()
        assert query.complete
        assert query.block["n_failures"] == len(records)
