"""Unit tests for the legacy SMS / voice services."""

import random

import pytest

from repro.android.telephony_legacy import (
    SMS_SEND_FAIL_RETRY,
    SmsManager,
    SmsSendOutcome,
    VOICE_NETWORK_CONGESTION,
    VOICE_SETUP_FAILED,
    VoiceCallManager,
    VoiceCallOutcome,
)
from repro.core.events import FailureType
from repro.core.signal import SignalLevel
from repro.simtime import SimClock


def sms(seed=0) -> SmsManager:
    return SmsManager(SimClock(), random.Random(seed))


class TestSmsManager:
    def test_good_signal_sends_first_try(self):
        result = sms().send(SignalLevel.LEVEL_4,
                            submit_failure_rate=0.0)
        assert result.outcome is SmsSendOutcome.SENT
        assert result.attempts == 1
        assert not result.failures

    def test_scripted_retry_surfaces_one_failure(self):
        manager = sms()
        seen = []
        manager.register_failure_listener(seen.append)
        result = manager.send(SignalLevel.LEVEL_3,
                              script=[True, False])
        assert result.outcome is SmsSendOutcome.SENT
        assert result.attempts == 2
        assert len(result.failures) == 1
        assert result.failures[0].error_code == SMS_SEND_FAIL_RETRY
        assert result.failures[0].failure_type is FailureType.SMS_FAILURE
        assert seen == list(result.failures)

    def test_retry_consumes_virtual_time(self):
        manager = sms()
        manager.send(SignalLevel.LEVEL_3, script=[True, False])
        assert manager.clock.now() == manager.retry_delay_s

    def test_exhausted_retries(self):
        result = sms().send(SignalLevel.LEVEL_0,
                            submit_failure_rate=1.0)
        assert result.outcome is SmsSendOutcome.RETRY_EXHAUSTED
        assert len(result.failures) == result.attempts

    def test_weak_signal_fails_more(self):
        weak = sum(
            sms(seed).send(SignalLevel.LEVEL_0).failures != ()
            for seed in range(200)
        )
        strong = sum(
            sms(seed).send(SignalLevel.LEVEL_4).failures != ()
            for seed in range(200)
        )
        assert weak > strong


class TestVoiceCallManager:
    def voice(self, seed=0) -> VoiceCallManager:
        return VoiceCallManager(SimClock(), random.Random(seed))

    def test_forced_failure_produces_an_event(self):
        manager = self.voice()
        seen = []
        manager.register_failure_listener(seen.append)
        result = manager.place_call(SignalLevel.LEVEL_3,
                                    force_failure=True)
        assert result.outcome is VoiceCallOutcome.SETUP_FAILED
        assert result.failure is not None
        assert result.failure.error_code in (VOICE_SETUP_FAILED,
                                             VOICE_NETWORK_CONGESTION)
        assert seen == [result.failure]

    def test_forced_success(self):
        result = self.voice().place_call(SignalLevel.LEVEL_0,
                                         force_failure=False)
        assert result.outcome is VoiceCallOutcome.CONNECTED
        assert result.failure is None

    def test_setup_takes_time(self):
        manager = self.voice()
        result = manager.place_call(SignalLevel.LEVEL_4,
                                    force_failure=False)
        assert manager.clock.now() == result.setup_time_s > 1.0

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            self.voice().place_call(SignalLevel.LEVEL_3, cell_load=1.5)

    def test_loaded_cells_blame_congestion_more(self):
        congested = 0
        for seed in range(300):
            result = self.voice(seed).place_call(
                SignalLevel.LEVEL_3, cell_load=0.95,
                force_failure=True,
            )
            if result.failure.error_code == VOICE_NETWORK_CONGESTION:
                congested += 1
        assert congested > 200
