"""Shared fixtures.

The expensive artifacts — a vanilla-arm dataset, its paired patched-arm
dataset, and a reference topology — are built once per session and
shared by every analysis/integration test.
"""

from __future__ import annotations

import random

import pytest

from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import NationalTopology, TopologyConfig

#: One scenario shared by the whole test session; large enough for the
#: distributional assertions, small enough to build in a few seconds.
TEST_SCENARIO = ScenarioConfig(
    n_devices=1_500,
    seed=11,
    topology=TopologyConfig(n_base_stations=1_000, seed=12),
)


@pytest.fixture(scope="session")
def vanilla_dataset() -> Dataset:
    """A measurement-arm dataset (vanilla Android mechanisms)."""
    return FleetSimulator(TEST_SCENARIO.vanilla()).run()


@pytest.fixture(scope="session")
def patched_dataset() -> Dataset:
    """The paired enhanced-arm dataset of the same scenario."""
    return FleetSimulator(TEST_SCENARIO.patched()).run()


#: BS-rich scenario: per-BS event density below saturation, needed by
#: BS-level prevalence analyses (Fig. 14).
BS_RICH_SCENARIO = ScenarioConfig(
    n_devices=800,
    seed=31,
    topology=TopologyConfig(n_base_stations=8_000, seed=32),
)


@pytest.fixture(scope="session")
def bs_rich_dataset() -> Dataset:
    """A fleet over a BS-rich topology (for BS-landscape analyses)."""
    return FleetSimulator(BS_RICH_SCENARIO.vanilla()).run()


@pytest.fixture(scope="session")
def topology() -> NationalTopology:
    """A mid-size reference topology."""
    return NationalTopology(TopologyConfig(n_base_stations=2_000, seed=5))


@pytest.fixture()
def rng() -> random.Random:
    """A fresh deterministic RNG per test."""
    return random.Random(1234)
