"""Tests for the paper-vs-measured scorecard."""

import pytest

from repro.analysis.validation import (
    AnchorCheck,
    Scorecard,
    _value,
    build_scorecard,
)


class TestValueChecks:
    def test_inside_band_passes(self):
        check = _value("x", paper=10.0, measured=11.0, rel_band=0.2)
        assert check.ok

    def test_outside_band_fails(self):
        check = _value("x", paper=10.0, measured=14.0, rel_band=0.2)
        assert not check.ok

    def test_formatting(self):
        check = _value("x", paper=0.403, measured=0.39,
                       rel_band=0.3, fmt="{:.3f}")
        assert check.paper == "0.403"
        assert check.measured == "0.390"


class TestScorecard:
    def make(self, oks):
        return Scorecard(checks=tuple(
            AnchorCheck(name=f"c{i}", paper="p", measured="m",
                        ok=ok, kind="shape")
            for i, ok in enumerate(oks)
        ))

    def test_counts(self):
        scorecard = self.make([True, False, True])
        assert scorecard.passed == 2
        assert scorecard.total == 3
        assert not scorecard.all_ok
        assert len(scorecard.failures()) == 1

    def test_render_marks_failures(self):
        text = self.make([True, False]).render()
        assert "NO" in text
        assert "1/2 anchors hold" in text


class TestBuildScorecard:
    def test_vanilla_only(self, vanilla_dataset):
        scorecard = build_scorecard(vanilla_dataset)
        assert scorecard.total >= 11
        # The session fixture is calibrated; the vast majority of
        # anchors must hold at this scale.
        assert scorecard.passed >= scorecard.total - 2

    def test_with_patched_arm_adds_ab_anchors(self, vanilla_dataset,
                                              patched_dataset):
        without = build_scorecard(vanilla_dataset)
        with_ab = build_scorecard(vanilla_dataset, patched_dataset)
        assert with_ab.total == without.total + 4
        names = [check.name for check in with_ab.checks]
        assert any("Fig. 20" in name for name in names)

    def test_render_is_complete(self, vanilla_dataset):
        text = build_scorecard(vanilla_dataset).render()
        assert "anchors hold" in text
        assert "Fig. 15" in text
