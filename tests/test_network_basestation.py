"""Unit tests for base stations."""

import random

import pytest

from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.signal import SignalLevel
from repro.network.basestation import (
    BaseStation,
    CellIdentity,
    DeploymentClass,
    DEPLOYMENT_TRAITS,
    make_identity,
)
from repro.network.isp import ISP
from repro.radio.rat import RAT


def make_bs(**kwargs) -> BaseStation:
    defaults = dict(
        bs_id=1,
        identity=make_identity(ISP.A, 1),
        isp=ISP.A,
        supported_rats=frozenset({RAT.LTE}),
        deployment=DeploymentClass.URBAN,
    )
    defaults.update(kwargs)
    return BaseStation(**defaults)


class TestCellIdentity:
    def test_3gpp_identity(self):
        identity = CellIdentity(mcc=460, mnc=0, lac=12, cid=345)
        assert not identity.is_cdma
        assert identity.as_string() == "460-0-12-345"

    def test_cdma_identity(self):
        identity = CellIdentity(mcc=460, mnc=3, sid=9, nid=1, bid=77)
        assert identity.is_cdma
        assert identity.as_string() == "460-9-1-77"

    def test_incomplete_identity_rejected(self):
        with pytest.raises(ValueError):
            CellIdentity(mcc=460, mnc=0)

    def test_make_identity_cdma_flag(self):
        assert make_identity(ISP.B, 5, cdma=True).is_cdma
        assert not make_identity(ISP.B, 5).is_cdma


class TestConstruction:
    def test_needs_at_least_one_rat(self):
        with pytest.raises(ValueError):
            make_bs(supported_rats=frozenset())

    def test_positive_propensity_required(self):
        with pytest.raises(ValueError):
            make_bs(failure_propensity=0.0)

    def test_load_defaults_to_deployment_traits(self):
        bs = make_bs(deployment=DeploymentClass.TRANSPORT_HUB,
                     supported_rats=frozenset({RAT.LTE}))
        assert bs.load == DEPLOYMENT_TRAITS[
            DeploymentClass.TRANSPORT_HUB].load

    def test_density_comes_from_deployment(self):
        hub = make_bs(deployment=DeploymentClass.TRANSPORT_HUB)
        rural = make_bs(deployment=DeploymentClass.RURAL)
        assert hub.deployment_density > rural.deployment_density


class TestAdmission:
    def test_unsupported_rat_rejected_with_plmn_cause(self):
        bs = make_bs()
        cause = bs.admit_bearer(RAT.NR, SignalLevel.LEVEL_4,
                                random.Random(0))
        assert cause == "UNSUPPORTED_APN_IN_CURRENT_PLMN"

    def test_disrepair_bs_always_fails(self):
        bs = make_bs(in_disrepair=True)
        for seed in range(10):
            assert bs.admit_bearer(RAT.LTE, SignalLevel.LEVEL_3,
                                   random.Random(seed)) is not None

    def test_healthy_bs_mostly_admits(self):
        bs = make_bs(deployment=DeploymentClass.SUBURBAN)
        rng = random.Random(1)
        admitted = sum(
            bs.admit_bearer(RAT.LTE, SignalLevel.LEVEL_4, rng) is None
            for _ in range(500)
        )
        assert admitted > 400

    def test_rejection_causes_are_registered(self):
        bs = make_bs(deployment=DeploymentClass.TRANSPORT_HUB,
                     failure_propensity=20.0)
        rng = random.Random(2)
        for _ in range(300):
            cause = bs.admit_bearer(RAT.LTE, SignalLevel.LEVEL_1, rng)
            if cause is not None:
                assert cause in ERROR_CODE_REGISTRY


class TestFailureProbability:
    def test_level0_riskier_than_level4(self):
        bs = make_bs()
        assert (bs.attempt_failure_probability(RAT.LTE, SignalLevel.LEVEL_0)
                > bs.attempt_failure_probability(
                    RAT.LTE, SignalLevel.LEVEL_4))

    def test_3g_idle_effect(self):
        """Sec. 3.3: 3G cells face less contention than 2G/4G."""
        bs = make_bs(supported_rats=frozenset(
            {RAT.GSM, RAT.UMTS, RAT.LTE}))
        level = SignalLevel.LEVEL_3
        assert (bs.attempt_failure_probability(RAT.UMTS, level)
                < bs.attempt_failure_probability(RAT.GSM, level))
        assert (bs.attempt_failure_probability(RAT.UMTS, level)
                < bs.attempt_failure_probability(RAT.LTE, level))

    def test_5g_immaturity_effect(self):
        bs = make_bs(supported_rats=frozenset({RAT.LTE, RAT.NR}))
        level = SignalLevel.LEVEL_3
        assert (bs.attempt_failure_probability(RAT.NR, level)
                > bs.attempt_failure_probability(RAT.LTE, level))

    def test_probability_is_capped(self):
        bs = make_bs(failure_propensity=1e6)
        assert bs.attempt_failure_probability(
            RAT.LTE, SignalLevel.LEVEL_0) <= 0.95

    def test_propensity_scales_risk(self):
        calm = make_bs(failure_propensity=0.5)
        hot = make_bs(failure_propensity=5.0)
        assert (hot.attempt_failure_probability(RAT.LTE,
                                                SignalLevel.LEVEL_3)
                > calm.attempt_failure_probability(
                    RAT.LTE, SignalLevel.LEVEL_3))
