"""Tests for fitting the enhancements from measured data (Sec. 4.2)."""

import random

import pytest

from repro.android.rat_policy import RatCandidate
from repro.core.enhancements import (
    fit_enhancements,
    fit_recovery_trigger,
    fit_risk_table,
)
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT


@pytest.fixture(scope="module")
def fitted(vanilla_dataset):
    return fit_enhancements(vanilla_dataset, rng=random.Random(5))


class TestFittedRiskTable:
    def test_measured_5g_level0_risk_is_high(self, vanilla_dataset):
        table = fit_risk_table(vanilla_dataset)
        assert table.likelihood(RAT.NR, SignalLevel.LEVEL_0) > 0.30

    def test_fitted_policy_vetoes_the_canonical_bad_move(self, fitted):
        current = RatCandidate(RAT.LTE, SignalLevel.LEVEL_3)
        bad = RatCandidate(RAT.NR, SignalLevel.LEVEL_0)
        assert fitted.rat_policy.vetoes(current, bad)

    def test_fitted_policy_allows_healthy_upgrades(self, fitted):
        current = RatCandidate(RAT.LTE, SignalLevel.LEVEL_2)
        good = RatCandidate(RAT.NR, SignalLevel.LEVEL_4)
        assert not fitted.rat_policy.vetoes(current, good)


class TestFittedRecoveryTrigger:
    def test_probations_are_far_below_vanilla(self, fitted):
        assert all(p < 45.0
                   for p in fitted.recovery_policy.probations_s)

    def test_annealing_improves_on_the_default(self, fitted):
        assert fitted.annealing.best_value < fitted.annealing.default_value
        assert fitted.annealing.improvement > 0.05

    def test_fit_recovery_trigger_is_deterministic(self, vanilla_dataset):
        a, _ = fit_recovery_trigger(vanilla_dataset,
                                    rng=random.Random(3), steps=400)
        b, _ = fit_recovery_trigger(vanilla_dataset,
                                    rng=random.Random(3), steps=400)
        assert a.probations_s == b.probations_s
