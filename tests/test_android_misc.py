"""Unit tests for ServiceState, the stall detector, TelephonyManager,
and EN-DC dual connectivity."""

import pytest

from repro.android.data_stall import VanillaDataStallDetector
from repro.android.dual_connectivity import (
    COLD_TRANSITION_DISTURBANCE_S,
    ControlPlaneLink,
    ENDC_TRANSITION_DISTURBANCE_S,
    EnDcManager,
)
from repro.android.service_state import ServiceState, ServiceStateTracker
from repro.android.telephony import TelephonyManager
from repro.core.events import FailureType
from repro.core.signal import SignalLevel
from repro.netstack.tcp_counters import TcpSegmentCounters
from repro.network.basestation import DeploymentClass, make_identity
from repro.network.basestation import BaseStation
from repro.network.isp import ISP
from repro.radio.rat import RAT
from repro.simtime import SimClock


class TestServiceStateTracker:
    def test_starts_in_service(self):
        tracker = ServiceStateTracker(SimClock())
        assert tracker.state is ServiceState.IN_SERVICE

    def test_outage_produces_closed_event(self):
        clock = SimClock()
        tracker = ServiceStateTracker(clock)
        tracker.begin_outage()
        clock.advance(45.0)
        event = tracker.end_outage()
        assert event is not None
        assert event.failure_type is FailureType.OUT_OF_SERVICE
        assert event.duration == 45.0

    def test_same_state_transition_is_noop(self):
        tracker = ServiceStateTracker(SimClock())
        assert tracker.set_state(ServiceState.IN_SERVICE) is None

    def test_listeners_see_transitions(self):
        tracker = ServiceStateTracker(SimClock())
        seen = []
        tracker.add_listener(
            lambda old, new, at: seen.append((old, new))
        )
        tracker.begin_outage()
        assert seen == [(ServiceState.IN_SERVICE,
                         ServiceState.OUT_OF_SERVICE)]

    def test_time_in_state(self):
        clock = SimClock()
        tracker = ServiceStateTracker(clock)
        clock.advance(7.0)
        assert tracker.time_in_state() == 7.0

    def test_reregister_requires_radio(self):
        tracker = ServiceStateTracker(SimClock())
        tracker.set_state(ServiceState.POWER_OFF)
        with pytest.raises(RuntimeError):
            tracker.reregister()


class TestVanillaDataStallDetector:
    def make(self):
        clock = SimClock()
        counters = TcpSegmentCounters(window_s=60.0)
        return clock, counters, VanillaDataStallDetector(clock, counters)

    def test_no_stall_on_healthy_traffic(self):
        clock, counters, detector = self.make()
        for i in range(20):
            counters.record_outbound(float(i))
            counters.record_inbound(float(i) + 0.01)
        clock.advance(20.0)
        assert detector.check() is None
        assert not detector.stall_suspected

    def test_stall_detected_on_signature(self):
        """>10 outbound, 0 inbound (Sec. 2.1)."""
        clock, counters, detector = self.make()
        for i in range(12):
            counters.record_outbound(float(i))
        clock.advance(12.0)
        event = detector.check()
        assert event is not None
        assert event.failure_type is FailureType.DATA_STALL
        assert detector.stall_suspected

    def test_boundary_needs_more_than_ten(self):
        clock, counters, detector = self.make()
        for i in range(10):
            counters.record_outbound(float(i))
        clock.advance(10.0)
        assert detector.check() is None

    def test_stall_clears_when_inbound_returns(self):
        clock, counters, detector = self.make()
        for i in range(12):
            counters.record_outbound(float(i))
        clock.advance(12.0)
        opened = detector.check()
        clock.advance(5.0)
        counters.record_inbound(17.0)
        closed = detector.check()
        assert closed is opened
        assert closed.duration == 5.0
        assert not detector.stall_suspected

    def test_listeners_fire_on_detection(self):
        clock, counters, detector = self.make()
        seen = []
        detector.add_listener(seen.append)
        for i in range(12):
            counters.record_outbound(float(i))
        clock.advance(12.0)
        detector.check()
        assert len(seen) == 1

    def test_reset_forgets_open_stall(self):
        clock, counters, detector = self.make()
        for i in range(12):
            counters.record_outbound(float(i))
        clock.advance(12.0)
        detector.check()
        detector.reset()
        assert not detector.stall_suspected


def lte_bs() -> BaseStation:
    return BaseStation(
        bs_id=7,
        identity=make_identity(ISP.A, 7),
        isp=ISP.A,
        supported_rats=frozenset({RAT.LTE, RAT.NR}),
        deployment=DeploymentClass.URBAN,
    )


class TestTelephonyManager:
    def test_detached_by_default(self):
        tm = TelephonyManager()
        assert tm.get_network_type() is None
        assert tm.get_cell_identity() is None
        assert tm.get_network_operator() is None

    def test_attach_exposes_context(self):
        tm = TelephonyManager()
        tm.attach(lte_bs(), RAT.LTE, SignalLevel.LEVEL_3)
        assert tm.get_network_type() is RAT.LTE
        assert tm.get_signal_strength() is SignalLevel.LEVEL_3
        assert tm.get_network_operator() == "ISP-A"
        assert tm.get_cell_identity().as_string().startswith("460-")

    def test_attach_requires_rat_support(self):
        tm = TelephonyManager()
        with pytest.raises(ValueError):
            tm.attach(lte_bs(), RAT.GSM, SignalLevel.LEVEL_3)

    def test_detach_clears_context(self):
        tm = TelephonyManager()
        tm.attach(lte_bs(), RAT.LTE, SignalLevel.LEVEL_3)
        tm.detach()
        assert tm.get_network_type() is None
        assert tm.get_signal_strength() is SignalLevel.LEVEL_0

    def test_update_signal(self):
        tm = TelephonyManager()
        tm.attach(lte_bs(), RAT.LTE, SignalLevel.LEVEL_3)
        tm.update_signal(SignalLevel.LEVEL_1)
        assert tm.get_signal_strength() is SignalLevel.LEVEL_1


class TestEnDc:
    def test_dual_connection_lifecycle(self):
        endc = EnDcManager()
        endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))
        assert endc.dual_connected
        assert endc.data_plane_rat is RAT.LTE

    def test_swap_promotes_the_slave(self):
        endc = EnDcManager()
        endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))
        disturbance = endc.swap()
        assert endc.data_plane_rat is RAT.NR
        assert disturbance == ENDC_TRANSITION_DISTURBANCE_S
        assert endc.swap_count == 1

    def test_slave_requires_master(self):
        with pytest.raises(ValueError):
            EnDcManager().attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))

    def test_links_must_differ_in_rat(self):
        endc = EnDcManager()
        endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        with pytest.raises(ValueError):
            endc.attach_slave(ControlPlaneLink(RAT.LTE, bs_id=2))

    def test_only_lte_nr_links_allowed(self):
        with pytest.raises(ValueError):
            ControlPlaneLink(RAT.GSM, bs_id=1)

    def test_swap_requires_dual_connection(self):
        with pytest.raises(RuntimeError):
            EnDcManager().swap()

    def test_transition_cost_cheaper_with_endc(self):
        """Sec. 4.2: the pre-established slave shortens the transition."""
        endc = EnDcManager()
        endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))
        warm, warm_fail = endc.transition_cost(RAT.NR)
        assert warm == ENDC_TRANSITION_DISTURBANCE_S
        cold_endc = EnDcManager()
        cold_endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        cold, cold_fail = cold_endc.transition_cost(RAT.NR)
        assert cold == COLD_TRANSITION_DISTURBANCE_S
        assert warm < cold
        assert warm_fail < cold_fail

    def test_detach_slave(self):
        endc = EnDcManager()
        endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
        endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))
        endc.detach_slave()
        assert not endc.dual_connected
