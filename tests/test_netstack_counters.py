"""Unit tests for the kernel-style TCP segment counters."""

import pytest
from hypothesis import given, strategies as st

from repro.netstack.tcp_counters import TcpSegmentCounters


class TestRecording:
    def test_counts_within_window(self):
        counters = TcpSegmentCounters(window_s=60.0)
        counters.record_outbound(0.0, count=5)
        counters.record_inbound(1.0, count=2)
        assert counters.outbound_in_window(30.0) == 5
        assert counters.inbound_in_window(30.0) == 2

    def test_expiry_after_window(self):
        counters = TcpSegmentCounters(window_s=60.0)
        counters.record_outbound(0.0, count=5)
        assert counters.outbound_in_window(61.0) == 0

    def test_boundary_is_exclusive(self):
        counters = TcpSegmentCounters(window_s=60.0)
        counters.record_outbound(0.0)
        assert counters.outbound_in_window(60.0) == 0
        counters.record_outbound(100.0)
        assert counters.outbound_in_window(159.9) == 1

    def test_reset_clears_everything(self):
        counters = TcpSegmentCounters()
        counters.record_outbound(0.0, count=3)
        counters.record_inbound(0.0, count=3)
        counters.reset()
        assert counters.outbound_in_window(1.0) == 0
        assert counters.inbound_in_window(1.0) == 0

    def test_non_monotonic_timestamps_rejected(self):
        counters = TcpSegmentCounters()
        counters.record_outbound(10.0)
        with pytest.raises(ValueError):
            counters.record_outbound(5.0)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            TcpSegmentCounters().record_outbound(0.0, count=0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TcpSegmentCounters(window_s=0.0)


class TestDataStallSignature:
    def test_stall_signature(self):
        """>10 outbound, 0 inbound within a minute (Sec. 2.1)."""
        counters = TcpSegmentCounters(window_s=60.0)
        for i in range(12):
            counters.record_outbound(float(i))
        now = 12.0
        assert counters.outbound_in_window(now) > 10
        assert counters.inbound_in_window(now) == 0

    def test_healthy_traffic_has_inbound(self):
        counters = TcpSegmentCounters(window_s=60.0)
        for i in range(12):
            counters.record_outbound(float(i))
            counters.record_inbound(float(i) + 0.05)
        assert counters.inbound_in_window(12.0) > 0


class TestProperties:
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1e4),
                  st.integers(min_value=1, max_value=5)),
        max_size=60,
    ))
    def test_window_count_never_exceeds_total(self, entries):
        counters = TcpSegmentCounters(window_s=60.0)
        entries.sort()
        total = 0
        now = 0.0
        for timestamp, count in entries:
            counters.record_outbound(timestamp, count=count)
            total += count
            now = timestamp
        assert counters.outbound_in_window(now) <= total

    @given(st.integers(min_value=1, max_value=100))
    def test_all_recent_segments_visible(self, count):
        counters = TcpSegmentCounters(window_s=60.0)
        counters.record_outbound(100.0, count=count)
        assert counters.outbound_in_window(100.0) == count
