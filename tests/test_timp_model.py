"""Unit tests for the TIMP recovery-CDF estimation and model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.timp.model import RecoveryCdf, TimpModel, _kaplan_meier


class TestKaplanMeier:
    def test_uncensored_matches_empirical_cdf(self):
        events = np.array([1.0, 2.0, 3.0, 4.0])
        grid, survival = _kaplan_meier(events, np.array([]))
        assert list(grid) == [1.0, 2.0, 3.0, 4.0]
        assert survival == pytest.approx([0.75, 0.5, 0.25, 0.0])

    def test_censoring_lifts_the_survival_curve(self):
        events = np.array([1.0, 2.0, 3.0])
        censored = np.array([1.5, 2.5])
        _grid, with_censoring = _kaplan_meier(events, censored)
        _grid2, without = _kaplan_meier(events, np.array([]))
        # Censored subjects keep later survival higher.
        assert with_censoring[-1] > without[-1] - 1e-12

    def test_no_events_rejected(self):
        with pytest.raises(ValueError):
            _kaplan_meier(np.array([]), np.array([1.0]))


class TestRecoveryCdf:
    def test_basic_properties(self):
        cdf = RecoveryCdf.from_durations([1.0, 2.0, 5.0, 10.0])
        assert cdf(0.0) == 0.0
        assert cdf(1.0) == pytest.approx(0.25)
        assert cdf(10.0) == pytest.approx(1.0, abs=1e-6)

    def test_monotone(self):
        cdf = RecoveryCdf.from_durations(
            np.random.RandomState(0).lognormal(2.0, 1.0, 500)
        )
        times = np.linspace(0, 200, 400)
        values = cdf.batch(times)
        assert (np.diff(values) >= -1e-12).all()

    def test_batch_matches_scalar(self):
        cdf = RecoveryCdf.from_durations([1.0, 3.0, 7.0, 20.0, 60.0])
        times = np.array([0.0, 0.5, 2.0, 10.0, 100.0])
        batch = cdf.batch(times)
        scalars = np.array([cdf(t) for t in times])
        assert batch == pytest.approx(scalars)

    def test_tail_extrapolation_stays_in_unit_interval(self):
        cdf = RecoveryCdf(np.array([1.0, 2.0]), np.array([5.0, 50.0]))
        for t in (10.0, 100.0, 1e5):
            assert 0.0 <= cdf(t) <= 1.0

    def test_quantile_inverts_the_cdf(self):
        cdf = RecoveryCdf.from_durations([1.0, 2.0, 5.0, 10.0])
        t = cdf.quantile(0.5)
        assert cdf(t) >= 0.5
        assert cdf(t - 0.2) < 0.75

    def test_quantile_validation(self):
        cdf = RecoveryCdf.from_durations([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            RecoveryCdf(np.array([-1.0]), np.array([]))

    def test_needs_at_least_one_event(self):
        with pytest.raises(ValueError):
            RecoveryCdf(np.array([]), np.array([1.0]))

    def test_sample_naturals_reproduces_the_distribution(self):
        source = np.random.RandomState(1).lognormal(2.0, 0.8, 2_000)
        cdf = RecoveryCdf.from_durations(source)
        samples = cdf.sample_naturals(2_000)
        assert np.median(samples) == pytest.approx(
            np.median(source), rel=0.1
        )

    def test_sample_naturals_positive_count_required(self):
        cdf = RecoveryCdf.from_durations([1.0])
        with pytest.raises(ValueError):
            cdf.sample_naturals(0)

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.1, max_value=1e4),
                    min_size=2, max_size=100))
    def test_cdf_bounded_property(self, durations):
        cdf = RecoveryCdf.from_durations(durations)
        for t in (0.0, 1.0, 100.0, 1e6):
            assert 0.0 <= cdf(t) <= 1.0


class TestFromDataset:
    def test_fit_from_study_dataset(self, vanilla_dataset):
        cdf = RecoveryCdf.from_dataset(vanilla_dataset)
        # Fig. 10 anchor: the majority of stalls auto-fix quickly.
        assert cdf(10.0) > 0.35
        assert cdf(10.0) < 0.80
        assert cdf.t_max > 300.0


class TestTimpModel:
    def test_five_states(self):
        assert TimpModel.STATES == ("S0", "S1", "S2", "S3", "Se")

    def test_overheads_progressive(self):
        cdf = RecoveryCdf.from_durations([1.0, 5.0])
        with pytest.raises(ValueError):
            TimpModel(recovery_cdf=cdf,
                      stage_overheads_s=(10.0, 5.0, 20.0))

    def test_stage0_has_no_overhead(self):
        cdf = RecoveryCdf.from_durations([1.0, 5.0])
        model = TimpModel(recovery_cdf=cdf)
        assert model.overhead(0) == 0.0
        assert model.overhead(1) < model.overhead(3)

    def test_escalation_complements_recovery(self):
        cdf = RecoveryCdf.from_durations([1.0, 2.0, 5.0, 10.0])
        model = TimpModel(recovery_cdf=cdf)
        for t in (1.0, 5.0, 50.0):
            assert model.escalation_probability(t) == pytest.approx(
                1.0 - model.recovery_probability(t)
            )
