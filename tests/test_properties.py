"""Cross-component property-based tests.

These pin down invariants that span modules: the fast episode resolver
agrees with the integration-grade engine, the prober's error bound
holds for arbitrary stall lengths, the cause sampler never emits
filterable codes, and saved datasets always round-trip.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.data_stall import VanillaDataStallDetector
from repro.android.recovery import (
    AUTO_RECOVERED,
    RecoveryEngine,
    RecoveryPolicy,
    StageParameters,
    UNRESOLVED,
    resolve_stall,
)
from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.signal import SignalLevel
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.network.bearer import DEFAULT_CAUSE_SAMPLER
from repro.radio.rat import RAT
from repro.simtime import SimClock


class TestResolverEngineAgreement:
    """The fast resolver and the live engine implement one mechanism."""

    def run_engine(self, policy, natural, seed):
        clock = SimClock()
        stack = DeviceNetStack()
        stack.inject_fault(
            ActiveFault(FaultKind.NETWORK_STALL, 0.0, natural)
        )
        detector = VanillaDataStallDetector(clock, stack.counters)
        engine = RecoveryEngine(clock, stack, detector, policy,
                                random.Random(seed),
                                poll_interval_s=0.25)
        return engine.run()

    @settings(max_examples=40, deadline=None)
    @given(
        natural=st.floats(min_value=0.5, max_value=600.0),
        seed=st.integers(min_value=0, max_value=500),
        pro0=st.floats(min_value=1.0, max_value=90.0),
    )
    def test_deterministic_policies_agree(self, natural, seed, pro0):
        """With all-or-nothing stages the two code paths must end the
        episode the same way at (nearly) the same time."""
        policy = RecoveryPolicy(
            probations_s=(pro0, 30.0, 30.0),
            stages=(
                StageParameters(2.0, 1.0),
                StageParameters(6.0, 1.0),
                StageParameters(15.0, 1.0),
            ),
        )
        fast = resolve_stall(policy, natural, random.Random(seed))
        live = self.run_engine(policy, natural, seed)
        assert fast.resolved_by in (AUTO_RECOVERED, 1)
        if fast.resolved_by == live.resolved_by:
            # Engine polling granularity is 0.25 s.
            assert abs(fast.duration_s - live.duration_s) <= 1.0
        else:
            # Divergence is only legitimate when the natural fix lands
            # inside the stage-execution window (probation start to
            # probation + overhead, padded by the poll granularity):
            # there the two schedulers race and either outcome is valid.
            assert pro0 - 0.5 <= natural <= pro0 + 2.0 + 0.5

    @settings(max_examples=30, deadline=None)
    @given(natural=st.floats(min_value=0.5, max_value=400.0),
           seed=st.integers(min_value=0, max_value=200))
    def test_hopeless_stalls_always_run_natural_course(self, natural,
                                                       seed):
        policy = RecoveryPolicy(
            probations_s=(10.0, 10.0, 10.0),
            stages=(
                StageParameters(2.0, 0.0),
                StageParameters(6.0, 0.0),
                StageParameters(15.0, 0.0),
            ),
        )
        fast = resolve_stall(policy, natural, random.Random(seed))
        assert fast.resolved_by in (AUTO_RECOVERED, UNRESOLVED)
        assert fast.duration_s == pytest.approx(natural)


class TestProberErrorBound:
    @settings(max_examples=25, deadline=None)
    @given(stall=st.floats(min_value=1.0, max_value=1_000.0))
    def test_error_is_at_most_one_volley(self, stall):
        """Sec. 2.2's guarantee below the backoff threshold."""
        clock = SimClock()
        stack = DeviceNetStack()
        stack.inject_fault(
            ActiveFault(FaultKind.NETWORK_STALL, 0.0, stall)
        )
        measurement = NetworkStateProber(clock).measure(stack)
        assert stall <= measurement.duration_s <= stall + 5.1

    @settings(max_examples=20, deadline=None)
    @given(stall=st.floats(min_value=1.0, max_value=300.0),
           kind=st.sampled_from([FaultKind.FIREWALL_MISCONFIG,
                                 FaultKind.PROXY_MISCONFIG,
                                 FaultKind.MODEM_DRIVER_FAILURE,
                                 FaultKind.DNS_OUTAGE]))
    def test_false_positives_resolve_in_one_round(self, stall, kind):
        clock = SimClock()
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(kind, 0.0, stall))
        measurement = NetworkStateProber(clock).measure(stack)
        assert measurement.rounds == 1
        assert measurement.verdict is kind.expected_verdict


class TestCauseSamplerInvariants:
    @settings(max_examples=60)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rat=st.sampled_from(list(RAT)),
        level=st.sampled_from(list(SignalLevel)),
        density=st.floats(min_value=0.0, max_value=1.0),
        handover=st.booleans(),
    )
    def test_sampled_causes_are_registered_and_not_filterable(
        self, seed, rat, level, density, handover
    ):
        cause = DEFAULT_CAUSE_SAMPLER.sample(
            random.Random(seed), rat=rat, signal_level=level,
            deployment_density=density, during_handover=handover,
        )
        assert cause in ERROR_CODE_REGISTRY
        assert not ERROR_CODE_REGISTRY.get(cause).rational_rejection


class TestDatasetRoundTripProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1e5),
            min_size=1, max_size=30,
        )
    )
    def test_arbitrary_failure_records_round_trip(self, durations,
                                                  tmp_path_factory):
        from repro.dataset.records import FailureRecord
        from repro.dataset.store import Dataset, load_dataset, save_dataset

        dataset = Dataset(failures=[
            FailureRecord(
                device_id=index, model=1, android_version="10.0",
                has_5g=False, isp="ISP-A",
                failure_type="DATA_STALL",
                start_time=float(index), duration_s=duration,
                bs_id=index, rat="4G", signal_level=index % 6,
                deployment="URBAN",
            )
            for index, duration in enumerate(durations)
        ])
        path = tmp_path_factory.mktemp("roundtrip") / "data.jsonl.gz"
        save_dataset(dataset, path)
        assert load_dataset(path).failures == dataset.failures
