"""Unit tests for the nationwide topology generator."""

import random

import pytest

from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP
from repro.network.topology import NationalTopology, TopologyConfig
from repro.radio.rat import RAT


class TestMarginals:
    def test_bs_count(self, topology):
        assert len(topology) == 2_000

    def test_isp_shares_match_the_paper(self, topology):
        """Sec. 3.3: 44.8 / 29.4 / 25.8% BS ownership."""
        shares = topology.isp_share()
        assert abs(shares[ISP.A] - 0.448) < 0.04
        assert abs(shares[ISP.B] - 0.294) < 0.04
        assert abs(shares[ISP.C] - 0.258) < 0.04

    def test_rat_support_shares_match_the_paper(self, topology):
        """Sec. 3.3: 23.4 / 10.2 / 65.2 / 7.3% (overlapping)."""
        shares = topology.rat_support_share()
        assert abs(shares[RAT.GSM] - 0.234) < 0.05
        assert abs(shares[RAT.UMTS] - 0.102) < 0.04
        assert abs(shares[RAT.LTE] - 0.652) < 0.05
        assert abs(shares[RAT.NR] - 0.073) < 0.03

    def test_multi_rat_cells_exist(self, topology):
        total = sum(topology.rat_support_share().values())
        assert total > 1.0

    def test_deployment_mix_covers_all_classes(self, topology):
        shares = topology.deployment_share()
        assert all(shares[cls] > 0 for cls in DeploymentClass)

    def test_hub_cells_support_lte(self, topology):
        for bs in topology.base_stations:
            if bs.deployment is DeploymentClass.TRANSPORT_HUB:
                assert bs.supports(RAT.LTE)


class TestPropensity:
    def test_propensities_are_heavy_tailed(self, topology):
        values = sorted(
            (bs.failure_propensity for bs in topology.base_stations),
            reverse=True,
        )
        mean = sum(values) / len(values)
        # Top 1% carries several times its proportional share.
        top = sum(values[:len(values) // 100])
        assert top > 3 * mean * (len(values) // 100)

    def test_disrepair_exists_in_remote_cells(self, topology):
        remote = [bs for bs in topology.base_stations
                  if bs.deployment is DeploymentClass.REMOTE]
        assert any(bs.in_disrepair for bs in remote)

    def test_disrepair_never_in_hubs(self, topology):
        hubs = [bs for bs in topology.base_stations
                if bs.deployment is DeploymentClass.TRANSPORT_HUB]
        assert hubs
        assert not any(bs.in_disrepair for bs in hubs)


class TestSampling:
    def test_sample_respects_isp(self, topology):
        rng = random.Random(0)
        for _ in range(50):
            bs = topology.sample_bs(rng, ISP.B, DeploymentClass.URBAN)
            assert bs.isp is ISP.B

    def test_sample_respects_rat(self, topology):
        rng = random.Random(0)
        for _ in range(50):
            bs = topology.sample_bs(
                rng, ISP.A, DeploymentClass.URBAN, rat=RAT.NR
            )
            assert bs.supports(RAT.NR)

    def test_sample_falls_back_across_classes(self, topology):
        """Hub pools are tiny; NR requests must still resolve."""
        rng = random.Random(0)
        bs = topology.sample_bs(
            rng, ISP.C, DeploymentClass.TRANSPORT_HUB, rat=RAT.NR
        )
        assert bs.supports(RAT.NR)

    def test_sampling_prefers_high_propensity(self, topology):
        rng = random.Random(1)
        samples = [
            topology.sample_bs(rng, ISP.A, DeploymentClass.URBAN)
            for _ in range(2_000)
        ]
        pool = [bs for bs in topology.base_stations
                if bs.isp is ISP.A
                and bs.deployment is DeploymentClass.URBAN]
        pool_mean = sum(b.failure_propensity for b in pool) / len(pool)
        sample_mean = sum(b.failure_propensity for b in samples) / len(samples)
        assert sample_mean > pool_mean

    def test_get_by_id(self, topology):
        bs = topology.base_stations[10]
        assert topology.get(bs.bs_id) is bs


class TestConfig:
    def test_too_few_stations_rejected(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_base_stations=3)

    def test_determinism(self):
        a = NationalTopology(TopologyConfig(n_base_stations=100, seed=1))
        b = NationalTopology(TopologyConfig(n_base_stations=100, seed=1))
        assert [x.failure_propensity for x in a.base_stations] == [
            x.failure_propensity for x in b.base_stations
        ]

    def test_seed_changes_population(self):
        a = NationalTopology(TopologyConfig(n_base_stations=100, seed=1))
        b = NationalTopology(TopologyConfig(n_base_stations=100, seed=2))
        assert [x.failure_propensity for x in a.base_stations] != [
            x.failure_propensity for x in b.base_stations
        ]
