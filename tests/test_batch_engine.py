"""The vectorized batch engine (repro.fleet.batch).

The batch engine uses counter-based RNG streams, so its records are a
pure function of (scenario, topology) — invariant under shard count,
worker count, and execution order.  These tests pin that contract, the
slow-path oracle hand-offs, the degenerate fleet shapes from the issue
(0 devices, 1 device, heavy slow-path traffic, shards smaller than the
batch width), and the statistical agreement with the serial engine.

Aggregate counts are heavy-tailed (a handful of devices hold a large
share of all events), so serial-vs-batch equivalence is asserted on
per-device and conditional statistics with tolerant bounds, never on
raw aggregate equality — the two engines draw from different RNG
streams by design (see docs/scaling.md).
"""

import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.fleet.batch import simulate_shard_batch
from repro.fleet.scenario import ENGINE_BATCH, ENGINE_SERIAL, ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import NationalTopology, TopologyConfig
from repro.parallel.sharding import ShardSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))


def scenario(devices=120, seed=11, engine=ENGINE_BATCH, **kwargs):
    return ScenarioConfig(
        n_devices=devices,
        seed=seed,
        engine=engine,
        topology=TopologyConfig(n_base_stations=400, seed=seed + 1),
        **kwargs,
    )


def digest(dataset):
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode())
    return hasher.hexdigest()


# -- determinism and sharding invariance ---------------------------------


def test_batch_run_is_deterministic():
    config = scenario()
    assert digest(FleetSimulator(config).run()) == digest(
        FleetSimulator(config).run())


def test_batch_records_invariant_under_shards_and_workers():
    config = scenario(devices=150)
    inline = digest(FleetSimulator(config).run())
    sharded = digest(FleetSimulator(config).run(workers=2, n_shards=5))
    assert sharded == inline


def test_shards_smaller_than_batch_width():
    # 7 devices across 5 shards: every shard is far below any batch
    # width; records must still match the inline run byte for byte.
    config = scenario(devices=7)
    inline = digest(FleetSimulator(config).run())
    tiny = digest(FleetSimulator(config).run(workers=2, n_shards=5))
    assert tiny == inline


def test_engine_recorded_in_metadata():
    dataset = FleetSimulator(scenario(devices=5)).run()
    assert dataset.metadata["engine"] == ENGINE_BATCH
    serial = FleetSimulator(
        scenario(devices=5, engine=ENGINE_SERIAL)).run()
    assert serial.metadata["engine"] == ENGINE_SERIAL


# -- degenerate fleets ---------------------------------------------------


def test_empty_shard():
    config = scenario(devices=10)
    topology = NationalTopology(config.topology)
    shard, _stats = simulate_shard_batch(
        config, topology, ShardSpec(index=0, n_shards=1, lo=5, hi=5))
    assert shard.devices == []
    assert shard.failures == []
    assert shard.transitions == []


def test_single_device_fleet():
    config = scenario(devices=1)
    dataset = FleetSimulator(config).run()
    assert len(dataset.devices) == 1
    device = dataset.devices[0]
    assert device.device_id == 1
    assert device.total_connected_s > 0
    assert all(f.device_id == 1 for f in dataset.failures)
    # And it matches the sharded path even though every shard but one
    # is empty.
    assert digest(dataset) == digest(
        FleetSimulator(config).run(workers=2, n_shards=4))


def test_slow_path_oracles_engage_on_patched_arm():
    """Devices ejected to the per-device oracles still produce records.

    The patched arm drives both slow paths hard: multi-cycle stall
    recoveries continue through the serial resolver (visible as stall
    records with more stages than the vectorized first cycle's 3), and
    EN-DC handover replay emits IRAT handover failures.  A fleet where
    both fire is the "all slow path" stress: the batch must eject,
    resolve serially, and splice results back deterministically.
    """
    config = scenario(devices=800, seed=7, arm="patched")
    dataset = FleetSimulator(config).run()
    stalls = [f for f in dataset.failures
              if f.failure_type == "DATA_STALL"]
    oracle_stalls = [f for f in stalls if f.stages_executed > 3]
    assert oracle_stalls, "no stall escaped the vectorized first cycle"
    irat = [f for f in dataset.failures
            if f.error_code == "IRAT_HANDOVER_FAILED"]
    assert irat, "EN-DC handover replay produced no IRAT failures"
    # Oracle participation must not break sharding invariance.
    assert digest(dataset) == digest(
        FleetSimulator(config).run(workers=2, n_shards=5))


# -- statistical equivalence vs the serial oracle ------------------------


@pytest.fixture(scope="module")
def paired_runs():
    serial = FleetSimulator(
        scenario(devices=400, seed=3, engine=ENGINE_SERIAL)).run()
    batch = FleetSimulator(
        scenario(devices=400, seed=3, engine=ENGINE_BATCH)).run()
    return serial, batch


def test_batch_matches_serial_failure_mix(paired_runs):
    serial, batch = paired_runs
    assert {f.failure_type for f in batch.failures} == {
        f.failure_type for f in serial.failures}
    ratio = len(batch.failures) / len(serial.failures)
    assert 0.5 < ratio < 2.0, f"failure volume ratio {ratio:.2f}"


def test_batch_matches_serial_per_device_rates(paired_runs):
    """Per-device conditional statistics agree despite heavy tails."""
    serial, batch = paired_runs

    def per_device_counts(dataset):
        counts = {}
        for f in dataset.failures:
            counts[f.device_id] = counts.get(f.device_id, 0) + 1
        return counts

    s_counts = np.array(
        sorted(per_device_counts(serial).values()), dtype=float)
    b_counts = np.array(
        sorted(per_device_counts(batch).values()), dtype=float)
    # Per-device counts span ~3 orders of magnitude (gamma hazard
    # tails), so simple order statistics like the median fluctuate
    # wildly over ~80 affected devices.  Compare on the log scale.
    dex = abs(float(np.mean(np.log10(s_counts)))
              - float(np.mean(np.log10(b_counts))))
    assert dex < 0.6, f"geometric-mean gap {dex:.2f} dex"
    # Empirical distributions stay close (two-sample KS distance).
    grid = np.logspace(0, 4, 200)
    cdf_s = np.searchsorted(s_counts, grid, side="right") / len(s_counts)
    cdf_b = np.searchsorted(b_counts, grid, side="right") / len(b_counts)
    assert float(np.max(np.abs(cdf_s - cdf_b))) < 0.35
    # Fraction of the fleet that failed at all.
    s_frac = len(s_counts) / len(serial.devices)
    b_frac = len(b_counts) / len(batch.devices)
    assert abs(b_frac - s_frac) < 0.15


def test_batch_matches_serial_durations(paired_runs):
    serial, batch = paired_runs
    for failure_type in ("DATA_SETUP_ERROR", "DATA_STALL"):
        s_durs = [f.duration_s for f in serial.failures
                  if f.failure_type == failure_type]
        b_durs = [f.duration_s for f in batch.failures
                  if f.failure_type == failure_type]
        assert s_durs and b_durs
        s_med, b_med = np.median(s_durs), np.median(b_durs)
        assert 0.4 < b_med / s_med < 2.5, (
            f"{failure_type} median duration {s_med:.1f}s serial vs "
            f"{b_med:.1f}s batch")


def test_batch_matches_serial_device_population(paired_runs):
    serial, batch = paired_runs
    assert len(batch.devices) == len(serial.devices)
    assert [d.device_id for d in batch.devices] == [
        d.device_id for d in serial.devices]

    # Same ISP marginal within sampling tolerance: the engines draw
    # each device's ISP from the same subscriber shares but different
    # RNG streams, so per-device assignments legitimately differ.
    def isp_shares(dataset):
        mix = {}
        for d in dataset.devices:
            mix[d.isp] = mix.get(d.isp, 0) + 1
        return {isp: n / len(dataset.devices) for isp, n in mix.items()}

    s_shares, b_shares = isp_shares(serial), isp_shares(batch)
    assert set(b_shares) == set(s_shares)
    for isp, share in s_shares.items():
        assert abs(b_shares[isp] - share) < 0.08, (isp, share,
                                                   b_shares[isp])


def test_metrics_key_sets_match_serial():
    serial = FleetSimulator(scenario(
        devices=60, seed=5, engine=ENGINE_SERIAL, metrics=True)).run()
    batch = FleetSimulator(scenario(
        devices=60, seed=5, engine=ENGINE_BATCH, metrics=True)).run()
    s_metrics = serial.metadata["metrics"]
    b_metrics = batch.metadata["metrics"]

    # Compare metric families, not full label sets: which label values
    # appear (e.g. resolved_by="unresolved") depends on which events the
    # engine's RNG stream realized in a small fleet.
    def families(keys):
        return {key.split("{", 1)[0] for key in keys}

    assert families(b_metrics["counters"]) == families(
        s_metrics["counters"])
    assert families(b_metrics["histograms"]) == families(
        s_metrics["histograms"])


# -- vectorized building blocks ------------------------------------------


def test_propagation_batch_matches_scalar():
    from repro.radio.propagation import PropagationModel
    from repro.radio.rat import ALL_RATS, rat_code

    model = PropagationModel(frequency_penalty_db=3.0)
    distances = np.array([5.0, 120.0, 900.0, 4_000.0])
    for rat in ALL_RATS:
        codes = np.full(distances.shape, rat_code(rat), dtype=np.int64)
        batch_rss = model.rss_dbm_batch(codes, distances)
        for i, distance in enumerate(distances):
            assert batch_rss[i] == pytest.approx(
                model.rss_dbm(rat, float(distance)))
        batch_levels = model.signal_level_batch(codes, distances)
        for i, distance in enumerate(distances):
            assert batch_levels[i] == int(
                model.signal_level(rat, float(distance)))


def test_histogram_observe_many_matches_loop():
    from repro.obs.registry import MetricsRegistry

    values = [0.01, 0.5, 3.0, 3.0, 250.0, 1e6]
    loop = MetricsRegistry()
    h1 = loop.get_histogram("t_s", (0.1, 1.0, 10.0, 100.0))
    for v in values:
        h1.observe(v)
    bulk = MetricsRegistry()
    h2 = bulk.get_histogram("t_s", (0.1, 1.0, 10.0, 100.0))
    h2.observe_many(np.array(values))
    h2.observe_many(np.array([]))  # empty batch is a no-op
    assert loop.deterministic_snapshot() == bulk.deterministic_snapshot()


def test_golden_digest_key_format():
    """bench_parallel's golden keys stay stable (CI relies on them)."""
    import check_doc_blocks  # noqa: F401  (tools path already on sys.path)
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_parallel

    goldens = bench_parallel.load_goldens()
    keys = [k for k in goldens if not k.startswith("_")]
    assert all(k.startswith("batch:") for k in keys)
    assert all(len(v) == 64 for k, v in goldens.items()
               if not k.startswith("_"))
