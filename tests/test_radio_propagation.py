"""Unit tests for the propagation model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.signal import SignalLevel
from repro.radio.propagation import PropagationModel
from repro.radio.rat import ALL_RATS, RAT


class TestPathLoss:
    def test_rss_decreases_with_distance(self):
        model = PropagationModel()
        near = model.rss_dbm(RAT.LTE, 50.0)
        far = model.rss_dbm(RAT.LTE, 2_000.0)
        assert near > far

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            PropagationModel().rss_dbm(RAT.LTE, 0.0)

    def test_frequency_penalty_lowers_rss(self):
        low_band = PropagationModel(frequency_penalty_db=0.0)
        high_band = PropagationModel(frequency_penalty_db=6.0)
        assert (high_band.rss_dbm(RAT.LTE, 500.0)
                == low_band.rss_dbm(RAT.LTE, 500.0) - 6.0)

    def test_nr_decays_faster_than_lte(self):
        """5G NR attenuates faster — the physical basis of weak-edge 5G."""
        model = PropagationModel()
        lte_drop = (model.rss_dbm(RAT.LTE, 100.0)
                    - model.rss_dbm(RAT.LTE, 1_000.0))
        nr_drop = (model.rss_dbm(RAT.NR, 100.0)
                   - model.rss_dbm(RAT.NR, 1_000.0))
        assert nr_drop > lte_drop

    def test_shadowing_requires_rng(self):
        model = PropagationModel(shadowing_sigma_db=8.0)
        deterministic = model.rss_dbm(RAT.LTE, 300.0)
        assert deterministic == model.rss_dbm(RAT.LTE, 300.0)
        shadowed = model.rss_dbm(RAT.LTE, 300.0, random.Random(7))
        assert shadowed != deterministic


class TestSignalLevelMapping:
    def test_close_to_bs_is_high_level(self):
        level = PropagationModel().signal_level(RAT.LTE, 10.0)
        assert level >= SignalLevel.LEVEL_4

    def test_far_from_bs_is_level_0(self):
        level = PropagationModel().signal_level(RAT.LTE, 100_000.0)
        assert level is SignalLevel.LEVEL_0

    @given(
        rat=st.sampled_from(list(ALL_RATS)),
        near=st.floats(min_value=1.0, max_value=1e5),
        far=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_level_monotone_in_distance(self, rat, near, far):
        if near > far:
            near, far = far, near
        model = PropagationModel()
        assert (model.signal_level(rat, near)
                >= model.signal_level(rat, far))


class TestCoverageRadius:
    def test_radius_consistent_with_rss(self):
        model = PropagationModel()
        radius = model.coverage_radius_m(RAT.LTE, min_dbm=-110.0)
        assert abs(model.rss_dbm(RAT.LTE, radius) - (-110.0)) < 0.5

    def test_higher_frequency_shrinks_coverage(self):
        """Sec. 3.3: ISP-B's higher bands mean smaller per-BS coverage."""
        low = PropagationModel(frequency_penalty_db=0.0)
        high = PropagationModel(frequency_penalty_db=4.0)
        assert (high.coverage_radius_m(RAT.LTE)
                < low.coverage_radius_m(RAT.LTE))

    def test_nr_coverage_smaller_than_gsm(self):
        model = PropagationModel()
        assert (model.coverage_radius_m(RAT.NR)
                < model.coverage_radius_m(RAT.GSM))
