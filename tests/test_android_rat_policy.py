"""Unit tests for RAT selection policies."""

import pytest

from repro.android.rat_policy import (
    Android9Policy,
    Android10BlindPolicy,
    DEFAULT_LEVEL_RISK,
    RatCandidate,
    StabilityCompatiblePolicy,
    TransitionRiskTable,
    policy_for_android_version,
)
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT

L = SignalLevel


def candidate(rat: RAT, level: int) -> RatCandidate:
    return RatCandidate(rat, SignalLevel(level))


class TestRiskTable:
    def test_default_table_anchors_fig17f(self):
        """The 4G level-4 -> 5G level-0 cell must be ~+0.37."""
        table = TransitionRiskTable()
        increase = table.increase(RAT.LTE, L.LEVEL_4, RAT.NR, L.LEVEL_0)
        assert abs(increase - 0.37) < 1e-9

    def test_level5_uptick_in_every_rat(self):
        """Fig. 15's hub anomaly shows in each row."""
        table = TransitionRiskTable()
        for rat in RAT:
            assert (table.likelihood(rat, L.LEVEL_5)
                    > table.likelihood(rat, L.LEVEL_4))

    def test_levels_0_to_4_monotone(self):
        table = TransitionRiskTable()
        for rat in RAT:
            risks = [table.likelihood(rat, SignalLevel(i))
                     for i in range(5)]
            assert risks == sorted(risks, reverse=True)

    def test_3g_is_the_safest_rat(self):
        """Sec. 3.3: idle 3G cells fail least."""
        table = TransitionRiskTable()
        for level in range(6):
            assert (table.likelihood(RAT.UMTS, SignalLevel(level))
                    <= table.likelihood(RAT.LTE, SignalLevel(level)))

    def test_incomplete_table_rejected(self):
        with pytest.raises(ValueError):
            TransitionRiskTable({RAT.LTE: (0.1,) * 6})


class TestAndroid10BlindPolicy:
    def test_blindly_prefers_5g(self):
        """Sec. 3.2: 5G wins even at level 0 against healthy 4G."""
        policy = Android10BlindPolicy()
        chosen = policy.select(
            candidate(RAT.LTE, 4),
            [candidate(RAT.LTE, 4), candidate(RAT.NR, 0)],
        )
        assert chosen.rat is RAT.NR
        assert chosen.signal_level is L.LEVEL_0

    def test_ties_break_by_level(self):
        policy = Android10BlindPolicy()
        chosen = policy.select(
            None, [candidate(RAT.NR, 1), candidate(RAT.NR, 3)]
        )
        assert chosen.signal_level is L.LEVEL_3

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            Android10BlindPolicy().select(None, [])


class TestAndroid9Policy:
    def test_never_selects_5g(self):
        policy = Android9Policy()
        chosen = policy.select(
            None, [candidate(RAT.NR, 5), candidate(RAT.LTE, 2)]
        )
        assert chosen.rat is RAT.LTE

    def test_only_5g_available_raises(self):
        with pytest.raises(ValueError):
            Android9Policy().select(None, [candidate(RAT.NR, 5)])

    def test_version_dispatch(self):
        assert isinstance(policy_for_android_version("9.0"),
                          Android9Policy)
        assert isinstance(policy_for_android_version("10.0"),
                          Android10BlindPolicy)


class TestStabilityCompatiblePolicy:
    def test_vetoes_the_fig17f_cases(self):
        """4G level-1..4 -> 5G level-0 must all be vetoed (Sec. 4.2)."""
        policy = StabilityCompatiblePolicy()
        for level in (1, 2, 3, 4):
            current = candidate(RAT.LTE, level)
            assert policy.vetoes(current, candidate(RAT.NR, 0))
            chosen = policy.select(
                current, [current, candidate(RAT.NR, 0)]
            )
            assert chosen.rat is RAT.LTE

    def test_allows_healthy_5g_upgrade(self):
        policy = StabilityCompatiblePolicy()
        current = candidate(RAT.LTE, 3)
        chosen = policy.select(
            current, [current, candidate(RAT.NR, 4)]
        )
        assert chosen.rat is RAT.NR

    def test_allows_5g_when_rate_improves_despite_risk(self):
        """The veto needs BOTH high risk AND no rate upside."""
        policy = StabilityCompatiblePolicy()
        current = candidate(RAT.LTE, 4)
        target = candidate(RAT.NR, 1)  # risky but much faster
        assert not policy.vetoes(current, target)

    def test_same_rat_never_vetoed(self):
        policy = StabilityCompatiblePolicy()
        assert not policy.vetoes(candidate(RAT.LTE, 4),
                                 candidate(RAT.LTE, 0))

    def test_initial_attach_avoids_level0(self):
        policy = StabilityCompatiblePolicy()
        chosen = policy.select(
            None, [candidate(RAT.NR, 0), candidate(RAT.LTE, 3)]
        )
        assert chosen.rat is RAT.LTE

    def test_stays_put_when_everything_is_vetoed(self):
        policy = StabilityCompatiblePolicy()
        current = candidate(RAT.LTE, 4)
        chosen = policy.select(current, [candidate(RAT.NR, 0)])
        assert chosen == current

    def test_veto_threshold_is_respected(self):
        lax = StabilityCompatiblePolicy(veto_threshold=0.99)
        current = candidate(RAT.LTE, 4)
        assert not lax.vetoes(current, candidate(RAT.NR, 0))

    def test_fitted_table_changes_decisions(self):
        """A measured table with a safe 5G edge lifts the veto."""
        safe_5g = dict(DEFAULT_LEVEL_RISK)
        safe_5g[RAT.NR] = (0.10, 0.08, 0.06, 0.05, 0.04, 0.05)
        policy = StabilityCompatiblePolicy(
            risk_table=TransitionRiskTable(safe_5g)
        )
        assert not policy.vetoes(candidate(RAT.LTE, 4),
                                 candidate(RAT.NR, 0))
