"""Tests for the sweep runner (``repro.scenarios.sweep``) and the
``repro sweep`` CLI.

The load-bearing properties:

* a pack simulated inside a sweep is byte-identical (same record
  digest, same analysis block) to the same pack run alone — sweeps
  never leak state between packs;
* ``resume`` skips completed packs without re-simulating and the
  rendered artifacts stay byte-identical; an edited pack is rerun;
* the landscape fold survives heterogeneous packs, including one that
  records zero failures;
* the CLI validates every pack before the first simulation and exits
  2 with the key path on a broken one.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.scenarios import PackError, pack_from_dict, run_sweep

pytestmark = pytest.mark.slow


def make_pack(name: str, devices: int = 60, seed: int = 7,
              **overrides) -> "ScenarioPack":  # noqa: F821
    document = {
        "name": name,
        "fleet": {"devices": devices, "seed": seed},
        "run": {"engine": "batch"},
    }
    document.update(overrides)
    return pack_from_dict(document)


def result_payload(out_dir, name: str) -> dict:
    path = out_dir / "packs" / name / "result.json"
    return json.loads(path.read_text())


class TestSweepDeterminism:
    def test_pack_in_sweep_equals_pack_alone(self, tmp_path):
        a = make_pack("alpha", seed=3)
        b = make_pack("beta", seed=4,
                      chaos={"drop_rate": 0.1})
        run_sweep([a, b], tmp_path / "both")
        run_sweep([a], tmp_path / "solo")
        together = result_payload(tmp_path / "both", "alpha")
        alone = result_payload(tmp_path / "solo", "alpha")
        assert together["record_digest"] == alone["record_digest"]
        assert together["analysis"] == alone["analysis"]
        assert together["counters"] == alone["counters"]

    def test_result_json_has_no_wall_clock(self, tmp_path):
        run_sweep([make_pack("alpha")], tmp_path)
        payload = result_payload(tmp_path, "alpha")
        text = json.dumps(payload)
        assert "wall_s" not in text
        assert "execution" not in payload
        # The volatile stats still exist, in their own file.
        execution = json.loads(
            (tmp_path / "packs" / "alpha" / "execution.json")
            .read_text()
        )
        assert "wall_s" in json.dumps(execution)


class TestResume:
    def test_resume_skips_completed_packs(self, tmp_path):
        packs = [make_pack("alpha"), make_pack("beta", seed=8)]
        first = run_sweep(packs, tmp_path)
        assert first.ran == ["alpha", "beta"]
        md = first.report_md_path.read_bytes()
        js = first.report_json_path.read_bytes()
        results = {
            name: (tmp_path / "packs" / name / "result.json")
            .read_bytes()
            for name in ("alpha", "beta")
        }
        second = run_sweep(packs, tmp_path, resume=True)
        assert second.skipped == ["alpha", "beta"]
        assert second.ran == []
        assert second.report_md_path.read_bytes() == md
        assert second.report_json_path.read_bytes() == js
        for name, blob in results.items():
            assert (tmp_path / "packs" / name / "result.json"
                    ).read_bytes() == blob

    def test_without_resume_everything_reruns(self, tmp_path):
        packs = [make_pack("alpha")]
        run_sweep(packs, tmp_path)
        again = run_sweep(packs, tmp_path)
        assert again.ran == ["alpha"]

    def test_edited_pack_is_rerun_not_served_stale(self, tmp_path):
        run_sweep([make_pack("alpha", devices=60)], tmp_path)
        stale = result_payload(tmp_path, "alpha")
        edited = make_pack("alpha", devices=70)
        result = run_sweep([edited], tmp_path, resume=True)
        assert result.skipped == []
        fresh = result_payload(tmp_path, "alpha")
        assert fresh["fingerprint"] == edited.fingerprint()
        assert fresh["fingerprint"] != stale["fingerprint"]
        assert fresh["analysis"]["n_devices"] == 70

    def test_torn_result_json_is_rerun(self, tmp_path):
        packs = [make_pack("alpha")]
        run_sweep(packs, tmp_path)
        target = tmp_path / "packs" / "alpha" / "result.json"
        target.write_text(target.read_text()[:40])  # torn write
        result = run_sweep(packs, tmp_path, resume=True)
        assert result.ran == ["alpha"]
        # And the rerun restores the full payload.
        assert result_payload(tmp_path, "alpha")["complete"]


class TestLandscapeFold:
    def test_heterogeneous_packs_share_one_table(self, tmp_path):
        packs = [
            make_pack("plain"),
            make_pack("chaotic", seed=9,
                      chaos={"drop_rate": 0.3,
                             "outages": [[3600, 7200]]}),
            make_pack("serial-arm", seed=10,
                      run={"engine": "serial"},
                      fleet={"devices": 40, "seed": 10,
                             "arm": "patched"}),
        ]
        result = run_sweep(packs, tmp_path)
        table = result.table
        for name in ("plain", "chaotic", "serial-arm"):
            assert f"| {name} |" in table
        report = json.loads(result.report_json_path.read_text())
        assert report["n_scenarios"] == 3
        # The chaos pack carries telemetry; the plain ones don't.
        by_name = {row["name"]: row for row in report["scenarios"]}
        assert by_name["chaotic"]["telemetry"] is not None
        assert by_name["plain"]["telemetry"] is None

    def test_zero_failure_pack_cannot_poison_the_table(self, tmp_path):
        # frequency_scale tiny + no false positives => typically zero
        # failures; the fold must stay NaN-free either way.
        quiet = pack_from_dict({
            "name": "quiet",
            "fleet": {"devices": 20, "seed": 5,
                      "study_months": 0.001,
                      "frequency_scale": 0.0001,
                      "false_positive_rate": 0.0},
            "run": {"engine": "batch"},
        })
        loud = make_pack("loud", devices=40, seed=6)
        result = run_sweep([quiet, loud], tmp_path)
        payload = result_payload(tmp_path, "quiet")
        assert payload["analysis"]["n_failures"] == 0
        assert payload["summary"]["prevalence"] == 0.0
        assert payload["summary"]["mean_duration_s"] == 0.0
        text = result.report_md_path.read_text()
        assert "nan" not in text.lower().replace("landscape", "")
        assert "no failures recorded" in text
        report = json.loads(result.report_json_path.read_text())
        extremes = report["extremes"]["prevalence"]
        assert extremes["min"]["scenario"] == "quiet"
        assert extremes["max"]["scenario"] == "loud"

    def test_duplicate_names_rejected_before_running(self, tmp_path):
        with pytest.raises(PackError, match="duplicate"):
            run_sweep([make_pack("twin"), make_pack("twin")],
                      tmp_path)
        assert not (tmp_path / "packs").exists()


class TestSweepCli:
    def write_pack(self, tmp_path, name: str, body: str = "") -> str:
        path = tmp_path / f"{name}.yaml"
        path.write_text(
            f"name: {name}\n"
            "fleet: {devices: 40, seed: 3}\n"
            "run: {engine: batch}\n" + body
        )
        return str(path)

    def test_sweep_runs_and_prints_table(self, tmp_path, capsys):
        yaml = pytest.importorskip("yaml")  # noqa: F841
        pack = self.write_pack(tmp_path, "cli-pack")
        out = tmp_path / "out"
        assert cli_main(["sweep", pack, "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "| cli-pack |" in captured
        assert "sweep complete: 1 ran, 0 skipped" in captured
        assert (out / "landscape.md").exists()

    def test_broken_pack_exits_2_before_any_simulation(
            self, tmp_path, capsys):
        yaml = pytest.importorskip("yaml")  # noqa: F841
        good = self.write_pack(tmp_path, "good")
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: bad\nchaos: {drop_rate: 7}\n")
        out = tmp_path / "out"
        code = cli_main(["sweep", good, str(bad), "--out", str(out)])
        assert code == 2
        captured = capsys.readouterr()
        assert "chaos.drop_rate" in captured.err
        # Validation failed up front: nothing was simulated.
        assert not out.exists()

    def test_missing_pack_exits_2(self, tmp_path, capsys):
        code = cli_main(["sweep", str(tmp_path / "ghost.yaml"),
                         "--out", str(tmp_path / "out")])
        assert code == 2
        assert "no such pack" in capsys.readouterr().err
