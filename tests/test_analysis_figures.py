"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis.figures import (
    SvgCanvas,
    bar_chart,
    cdf_chart,
    grouped_bar_chart,
    heatmap,
    loglog_scatter,
    render_paper_figures,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgCanvas:
    def test_serializes_valid_xml(self):
        canvas = SvgCanvas(100, 80)
        canvas.rect(1, 2, 3, 4, fill="#123456")
        canvas.line(0, 0, 10, 10)
        canvas.text(5, 5, "hello <&>")
        root = parse(canvas.to_svg())
        assert root.tag == f"{SVG_NS}svg"
        tags = [child.tag for child in root]
        assert f"{SVG_NS}rect" in tags
        assert f"{SVG_NS}line" in tags
        assert f"{SVG_NS}text" in tags

    def test_escapes_text(self):
        canvas = SvgCanvas(100, 80)
        canvas.text(0, 0, "a<b & c>d")
        root = parse(canvas.to_svg())
        texts = root.findall(f"{SVG_NS}text")
        assert texts[0].text == "a<b & c>d"


class TestCharts:
    def test_bar_chart_has_one_bar_per_value(self):
        svg = bar_chart({"a": 1.0, "b": 2.0, "c": 3.0}, "t")
        root = parse(svg)
        # background + 3 bars
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 4

    def test_bar_heights_scale_with_values(self):
        svg = bar_chart({"small": 1.0, "big": 4.0}, "t")
        rects = parse(svg).findall(f"{SVG_NS}rect")[1:]
        heights = [float(r.get("height")) for r in rects]
        assert heights[1] == pytest.approx(4 * heights[0], rel=0.01)

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({}, "t")

    def test_grouped_bars_and_legend(self):
        svg = grouped_bar_chart(
            {"g1": {"x": 1.0, "y": 2.0}, "g2": {"x": 3.0, "y": 4.0}},
            "t",
        )
        root = parse(svg)
        rects = root.findall(f"{SVG_NS}rect")
        # background + 4 bars + 2 legend swatches
        assert len(rects) == 7

    def test_cdf_chart_draws_polylines(self):
        xs = np.array([1.0, 2.0, 3.0])
        ps = np.array([1 / 3, 2 / 3, 1.0])
        svg = cdf_chart({"s": (xs, ps)}, "t", "x")
        polylines = parse(svg).findall(f"{SVG_NS}polyline")
        assert len(polylines) == 1
        assert "fill" in polylines[0].attrib

    def test_loglog_scatter_with_fit(self):
        ranking = 100.0 / np.arange(1, 200) ** 0.8
        svg = loglog_scatter(ranking, "t", "rank", "count",
                             fit_a=0.8, fit_b=100.0)
        polylines = parse(svg).findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2  # data + fit

    def test_loglog_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_scatter(np.array([5.0]), "t", "x", "y")

    def test_heatmap_has_36_cells(self):
        matrix = np.full((6, 6), np.nan)
        matrix[1][0] = 0.37
        matrix[2][3] = -0.05
        svg = heatmap(matrix, "t", "j", "i")
        rects = parse(svg).findall(f"{SVG_NS}rect")
        assert len(rects) == 37  # background + 36 cells

    def test_heatmap_shape_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((3, 3)), "t", "j", "i")


class TestRenderPaperFigures:
    def test_renders_all_figures(self, tmp_path, vanilla_dataset,
                                 patched_dataset):
        paths = render_paper_figures(vanilla_dataset, patched_dataset,
                                     out_dir=tmp_path)
        names = {p.name for p in paths}
        expected = {
            "fig02_prevalence_per_model.svg",
            "fig03_failures_per_phone.svg",
            "fig04_duration.svg",
            "fig05_frequency_per_model.svg",
            "fig06_07_5g.svg",
            "fig08_09_android.svg",
            "fig10_stall_autofix.svg",
            "fig11_bs_zipf.svg",
            "fig12_13_isp.svg",
            "fig14_rat.svg",
            "fig15_rss.svg",
            "fig16_rat_rss.svg",
            "fig17_4g_5g.svg",
            "fig19_20_rat_ab.svg",
            "fig21_durations.svg",
        }
        assert expected <= names
        for path in paths:
            parse(path.read_text())  # every file is valid XML

    def test_vanilla_only_skips_ab_figures(self, tmp_path,
                                           vanilla_dataset):
        paths = render_paper_figures(vanilla_dataset, None,
                                     out_dir=tmp_path / "v")
        names = {p.name for p in paths}
        assert "fig21_durations.svg" not in names
        assert "fig15_rss.svg" in names
