"""Tests for the ingest-path circuit breaker."""

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, reset=10.0, probes=1):
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout_s=reset,
        half_open_probes=probes, clock=clock,
    )
    return breaker, clock


class TestTripping:
    def test_stays_closed_below_threshold(self):
        breaker, _clock = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.trips == 0

    def test_trips_at_threshold(self):
        breaker, _clock = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _clock = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_refuses_and_counts_short_circuits(self):
        breaker, _clock = make_breaker(threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.short_circuits == 2


class TestRecovery:
    def test_half_opens_after_the_reset_timeout(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.99)
        assert breaker.state == OPEN
        clock.advance(0.02)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_only_the_probe_budget(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0, probes=1)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # budget spent, short-circuited
        assert breaker.short_circuits == 1

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        # Fully recovered: the probe budget is back for next time.
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_the_timer(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_in_s() == pytest.approx(10.0)

    def test_retry_in_counts_down(self):
        breaker, clock = make_breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(4.0)
        assert breaker.retry_in_s() == pytest.approx(6.0)
        assert breaker.retry_in_s() >= 0.0


class TestObservability:
    def test_transitions_and_state_land_in_the_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            breaker, clock = make_breaker(threshold=2, reset=5.0)
            breaker.record_failure()
            breaker.record_failure()      # closed -> open
            breaker.allow()               # short circuit
            clock.advance(5.0)
            assert breaker.allow()        # open -> half-open, probe
            breaker.record_success()      # half-open -> closed
        counters = registry.snapshot()["counters"]
        assert counters[
            'serve_breaker_transitions_total{from="closed",to="open"}'
        ] == 1
        assert counters[
            'serve_breaker_transitions_total'
            '{from="open",to="half-open"}'
        ] == 1
        assert counters[
            'serve_breaker_transitions_total'
            '{from="half-open",to="closed"}'
        ] == 1
        assert counters["serve_breaker_trips_total"] == 1
        assert counters["serve_breaker_short_circuits_total"] == 1
        # High-watermark gauge: "the breaker was fully open at some
        # point" survives the recovery.
        assert registry.snapshot()["gauges"][
            "serve_breaker_state"
        ] == 2.0

    def test_summary_keys(self):
        breaker, _clock = make_breaker()
        assert set(breaker.summary()) == {
            "state", "trips", "recoveries", "short_circuits",
            "consecutive_failures",
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)
