"""Unit tests for DNS/ICMP probe endpoints."""

from repro.network.dns import (
    DnsServer,
    LOOPBACK_ADDRESS,
    TEST_SERVER_DOMAIN,
    default_dns_servers,
)


class TestDnsServer:
    def test_healthy_server_answers_ping(self):
        ok, elapsed = DnsServer("1.1.1.1").ping(timeout_s=1.0)
        assert ok
        assert elapsed < 1.0

    def test_unreachable_server_times_out(self):
        server = DnsServer("1.1.1.1", icmp_reachable=False)
        ok, elapsed = server.ping(timeout_s=1.0)
        assert not ok
        assert elapsed == 1.0

    def test_healthy_server_resolves(self):
        ok, elapsed = DnsServer("1.1.1.1").resolve(
            TEST_SERVER_DOMAIN, timeout_s=5.0
        )
        assert ok
        assert elapsed < 5.0

    def test_dead_service_fails_resolution_but_answers_ping(self):
        """The distinction the prober's DNS-service verdict rests on."""
        server = DnsServer("1.1.1.1", service_available=False)
        assert server.ping(timeout_s=1.0)[0]
        assert not server.resolve(TEST_SERVER_DOMAIN, timeout_s=5.0)[0]

    def test_slow_server_can_exceed_tight_timeout(self):
        server = DnsServer("1.1.1.1", latency_s=2.0)
        ok, elapsed = server.ping(timeout_s=1.0)
        assert not ok

    def test_defaults(self):
        servers = default_dns_servers()
        assert len(servers) == 2
        assert all(s.icmp_reachable for s in servers)

    def test_loopback_constant(self):
        assert LOOPBACK_ADDRESS == "127.0.0.1"
