"""Unit tests for the user-tolerance model."""

import random

from hypothesis import given, strategies as st

from repro import quantities
from repro.core.usermodel import DEFAULT_USER_TOLERANCE, UserToleranceModel


class TestUserToleranceModel:
    def test_default_matches_the_survey(self):
        assert (DEFAULT_USER_TOLERANCE.manual_reset_mean_s
                == quantities.USER_MANUAL_RESET_S)

    def test_tolerates_short_stall(self):
        assert DEFAULT_USER_TOLERANCE.tolerates(5.0)

    def test_does_not_tolerate_long_stall(self):
        assert not DEFAULT_USER_TOLERANCE.tolerates(120.0)

    def test_sample_is_near_the_mean(self):
        rng = random.Random(0)
        samples = [
            DEFAULT_USER_TOLERANCE.sample_reset_time(rng)
            for _ in range(500)
        ]
        mean = sum(samples) / len(samples)
        assert 25.0 <= mean <= 35.0

    def test_sample_never_below_floor(self):
        model = UserToleranceModel(manual_reset_mean_s=6.0,
                                   manual_reset_jitter_s=10.0)
        rng = random.Random(1)
        assert all(
            model.sample_reset_time(rng) >= 5.0 for _ in range(200)
        )

    @given(st.integers(min_value=0, max_value=10_000))
    def test_sampling_is_deterministic_per_seed(self, seed):
        a = DEFAULT_USER_TOLERANCE.sample_reset_time(random.Random(seed))
        b = DEFAULT_USER_TOLERANCE.sample_reset_time(random.Random(seed))
        assert a == b
