"""Unit tests for signal levels and dBm bucketing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.signal import (
    ALL_LEVELS,
    SignalLevel,
    dbm_to_level,
    level_bounds,
)
from repro.radio.rat import ALL_RATS, RAT


class TestSignalLevel:
    def test_six_levels(self):
        assert len(ALL_LEVELS) == 6

    def test_levels_are_ordered(self):
        assert SignalLevel.LEVEL_0 < SignalLevel.LEVEL_5

    def test_excellent_flag(self):
        assert SignalLevel.LEVEL_5.is_excellent
        assert not SignalLevel.LEVEL_4.is_excellent

    def test_int_conversion(self):
        assert int(SignalLevel.LEVEL_3) == 3


class TestDbmToLevel:
    @pytest.mark.parametrize("rat", ALL_RATS)
    def test_very_weak_is_level_0(self, rat):
        assert dbm_to_level(rat, -160.0) is SignalLevel.LEVEL_0

    @pytest.mark.parametrize("rat", ALL_RATS)
    def test_very_strong_is_level_5(self, rat):
        assert dbm_to_level(rat, -40.0) is SignalLevel.LEVEL_5

    def test_accepts_rat_name_strings(self):
        assert dbm_to_level("LTE", -40.0) is SignalLevel.LEVEL_5

    def test_unknown_rat_rejected(self):
        with pytest.raises(KeyError):
            dbm_to_level("WIMAX", -80.0)

    @pytest.mark.parametrize("rat", ALL_RATS)
    def test_bounds_are_ascending(self, rat):
        bounds = level_bounds(rat)
        assert list(bounds) == sorted(bounds)

    @pytest.mark.parametrize("rat", ALL_RATS)
    def test_boundary_values_map_to_their_level(self, rat):
        for index, bound in enumerate(level_bounds(rat), start=1):
            assert int(dbm_to_level(rat, bound)) == index

    @given(
        rat=st.sampled_from(list(ALL_RATS)),
        a=st.floats(min_value=-160, max_value=-30),
        b=st.floats(min_value=-160, max_value=-30),
    )
    def test_monotone_in_dbm(self, rat: RAT, a: float, b: float):
        if a > b:
            a, b = b, a
        assert dbm_to_level(rat, a) <= dbm_to_level(rat, b)
