"""Documentation code blocks must stay truthful (tools/check_doc_blocks).

Every fenced ``python`` block in README.md and docs/*.md that mentions
``repro`` must compile, and its ``repro`` imports must resolve — so an
API rename cannot silently strand the docs.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_doc_blocks  # noqa: E402


def test_all_doc_blocks_pass():
    failures = []
    for path in check_doc_blocks.default_paths():
        failures.extend(check_doc_blocks.check_file(path))
    assert failures == []


def test_checker_catches_broken_import(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```python\nfrom repro import DoesNotExist\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "import fails" in failures[0]


def test_checker_catches_syntax_error(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```python\nfrom repro import (\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "does not compile" in failures[0]


def test_non_python_blocks_ignored(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "```bash\npython -m repro study --nonsense\n```\n"
        "```\nrepro ascii diagram\n```\n",
        encoding="utf-8",
    )
    assert check_doc_blocks.check_file(doc) == []
