"""Documentation code blocks must stay truthful (tools/check_doc_blocks).

Every fenced ``python`` block in README.md and docs/*.md that mentions
``repro`` must compile, and its ``repro`` imports must resolve — so an
API rename cannot silently strand the docs.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_doc_blocks  # noqa: E402


def test_all_doc_blocks_pass():
    failures = []
    for path in check_doc_blocks.default_paths():
        failures.extend(check_doc_blocks.check_file(path))
    assert failures == []


def test_checker_catches_broken_import(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```python\nfrom repro import DoesNotExist\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "import fails" in failures[0]


def test_checker_catches_syntax_error(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```python\nfrom repro import (\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "does not compile" in failures[0]


def test_plain_fences_ignored(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "```\nrepro ascii diagram --not-a-flag\n```\n",
        encoding="utf-8",
    )
    assert check_doc_blocks.check_file(doc) == []


def test_cli_check_catches_unknown_flag(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```bash\npython -m repro study --nonsense\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "CLI invocation does not parse" in failures[0]
    assert "--nonsense" in failures[0]


def test_cli_check_catches_unknown_subcommand(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "```console\n$ repro sturdy --devices 5\n```\n",
        encoding="utf-8",
    )
    failures = check_doc_blocks.check_file(doc)
    assert len(failures) == 1
    assert "sturdy" in failures[0]


def test_cli_check_accepts_real_invocations(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "```bash\n"
        "$ PYTHONPATH=src python -m repro study --devices 2000 \\\n"
        "      --workers 4 --engine batch --save study.jsonl.gz\n"
        "repro analyze study.jsonl.gz | head\n"
        "python -m repro serve --checkpoint serve.ckpt --resume\n"
        "python benchmarks/bench_parallel.py --devices 10  # not repro\n"
        "```\n",
        encoding="utf-8",
    )
    assert check_doc_blocks.check_file(doc) == []


def test_cli_check_skips_usage_synopses(tmp_path):
    doc = tmp_path / "ok.md"
    doc.write_text(
        "```bash\npython -m repro study [--devices N] [--seed S]\n```\n",
        encoding="utf-8",
    )
    assert check_doc_blocks.check_file(doc) == []


def test_extract_cli_args_shapes():
    extract = check_doc_blocks.extract_cli_args
    assert extract("$ repro study --devices 5 > out.txt") == [
        "study", "--devices", "5"]
    assert extract("FOO=1 python -m repro ab --seed 2 && echo done") == [
        "ab", "--seed", "2"]
    assert extract("echo repro study") is None
    assert extract("python -m repro study [--devices N]") is None
