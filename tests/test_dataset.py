"""Unit tests for dataset records, storage, and aggregation helpers."""

import numpy as np
import pytest

from repro.dataset.aggregate import (
    cdf,
    fraction_below,
    group_by,
    quantile,
    safe_mean,
)
from repro.dataset.records import (
    ARM_PATCHED,
    ARM_VANILLA,
    BaseStationRecord,
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)
from repro.dataset.store import Dataset, load_dataset, save_dataset


def device(device_id=1, **kwargs) -> DeviceRecord:
    defaults = dict(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A",
        exposure_s={("4G", 3): 1_000.0, ("4G", 4): 2_000.0},
    )
    defaults.update(kwargs)
    return DeviceRecord(**defaults)


def failure(device_id=1, **kwargs) -> FailureRecord:
    defaults = dict(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A", failure_type="DATA_STALL",
        start_time=100.0, duration_s=30.0, bs_id=7, rat="4G",
        signal_level=3, deployment="URBAN",
    )
    defaults.update(kwargs)
    return FailureRecord(**defaults)


class TestRecords:
    def test_device_roundtrip(self):
        original = device()
        restored = DeviceRecord.from_dict(original.to_dict())
        assert restored == original

    def test_device_exposure_total(self):
        assert device().total_connected_s == 3_000.0

    def test_failure_roundtrip(self):
        original = failure(error_code="SIGNAL_LOST", resolved_by=1,
                           stages_executed=1, post_transition=True)
        restored = FailureRecord.from_dict(original.to_dict())
        assert restored == original

    def test_transition_roundtrip(self):
        original = TransitionRecord(
            device_id=1, from_rat="4G", from_level=3, to_rat="5G",
            to_level=0, executed=True, failed_after=True,
            arm=ARM_PATCHED,
        )
        assert TransitionRecord.from_dict(original.to_dict()) == original

    def test_bs_record_roundtrip(self):
        original = BaseStationRecord(bs_id=1, isp="ISP-B",
                                     rats=("2G", "4G"),
                                     deployment="URBAN")
        assert BaseStationRecord.from_dict(original.to_dict()) == original

    def test_arms_are_distinct(self):
        assert ARM_VANILLA != ARM_PATCHED


class TestDataset:
    def make(self) -> Dataset:
        return Dataset(
            devices=[device(1), device(2, model=4)],
            failures=[failure(1), failure(1, failure_type="DATA_SETUP_ERROR"),
                      failure(2, model=4)],
            metadata={"seed": 1},
        )

    def test_counts(self):
        dataset = self.make()
        assert dataset.n_devices == 2
        assert dataset.n_failures == 3

    def test_failures_of_type(self):
        dataset = self.make()
        assert len(dataset.failures_of_type("DATA_STALL")) == 2

    def test_grouping_helpers(self):
        dataset = self.make()
        assert set(dataset.devices_by_model()) == {3, 4}
        assert set(dataset.failures_by_device()) == {1, 2}

    def test_merge(self):
        merged = self.make().merge(self.make())
        assert merged.n_devices == 4
        assert merged.n_failures == 6

    def test_merge_keeps_both_arms_base_stations(self):
        a = self.make()
        a.base_stations = [
            BaseStationRecord(bs_id=1, isp="ISP-A", rats=("4G",),
                              deployment="URBAN"),
            BaseStationRecord(bs_id=2, isp="ISP-A", rats=("4G",),
                              deployment="RURAL"),
        ]
        b = self.make()
        b.base_stations = [
            BaseStationRecord(bs_id=2, isp="ISP-A", rats=("4G",),
                              deployment="RURAL"),
            BaseStationRecord(bs_id=3, isp="ISP-B", rats=("5G",),
                              deployment="URBAN"),
        ]
        merged = a.merge(b)
        assert sorted(bs.bs_id for bs in merged.base_stations) == [1, 2, 3]

    def test_merge_with_one_empty_inventory(self):
        a = self.make()
        b = self.make()
        b.base_stations = [
            BaseStationRecord(bs_id=9, isp="ISP-B", rats=("4G",),
                              deployment="URBAN")
        ]
        assert len(a.merge(b).base_stations) == 1
        assert len(b.merge(a).base_stations) == 1

    def test_merge_preserves_arm_metadata(self):
        a = self.make()
        b = self.make()
        b.metadata = {"seed": 2}
        merged = a.merge(b)
        assert merged.metadata["merged_from"] == [{"seed": 1},
                                                  {"seed": 2}]

    def test_merge_re_merges_analysis_blocks(self):
        from repro.analysis.columnar import compute_analysis_block

        a = self.make()
        # Disjoint device populations (the shard-merge contract): the
        # re-merged block then equals a recompute over merged records.
        b = Dataset(
            devices=[device(3), device(4, model=4)],
            failures=[failure(3), failure(4, model=4)],
            metadata={"seed": 2},
        )
        a.metadata["analysis"] = compute_analysis_block(a)
        b.metadata["analysis"] = compute_analysis_block(b)
        merged = a.merge(b)
        assert (merged.metadata["analysis"]
                == compute_analysis_block(merged))

    def test_save_load_roundtrip(self, tmp_path):
        dataset = self.make()
        dataset.base_stations = [
            BaseStationRecord(bs_id=7, isp="ISP-A", rats=("4G",),
                              deployment="URBAN")
        ]
        dataset.transitions = [TransitionRecord(
            device_id=1, from_rat="4G", from_level=3, to_rat="5G",
            to_level=1, executed=True, failed_after=False,
        )]
        path = tmp_path / "study.jsonl.gz"
        save_dataset(dataset, path)
        restored = load_dataset(path)
        assert restored.devices == dataset.devices
        assert restored.failures == dataset.failures
        assert restored.transitions == dataset.transitions
        assert restored.base_stations == dataset.base_stations
        assert restored.metadata == dataset.metadata


class TestAggregate:
    def test_group_by(self):
        groups = group_by(range(10), key=lambda x: x % 2)
        assert groups[0] == [0, 2, 4, 6, 8]

    def test_cdf_is_monotone(self):
        xs, ps = cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_of_empty(self):
        xs, ps = cdf([])
        assert len(xs) == 0 and len(ps) == 0

    def test_cdf_of_single_value(self):
        xs, ps = cdf([42.0])
        assert list(xs) == [42.0]
        assert list(ps) == [1.0]

    def test_quantile(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_fraction_below(self):
        assert fraction_below([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_fraction_below_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1.0)

    def test_safe_mean(self):
        assert safe_mean([]) == 0.0
        assert safe_mean([1.0, 3.0]) == 2.0

    def test_cdf_handles_numpy_input(self):
        xs, ps = cdf(np.array([5.0, 1.0]))
        assert xs[0] == 1.0


class TestDurablePersistence:
    """Atomic saves and damage-tolerant loads (the robustness pass)."""

    def make(self) -> Dataset:
        return Dataset(
            devices=[device(1), device(2, model=4)],
            failures=[failure(1), failure(2, model=4)],
            metadata={"seed": 1},
        )

    def test_save_is_atomic_and_reproducible(self, tmp_path):
        path = tmp_path / "study.jsonl.gz"
        save_dataset(self.make(), path)
        first = path.read_bytes()
        save_dataset(self.make(), path)
        # gzip mtime pinned to 0: identical datasets, identical bytes.
        assert path.read_bytes() == first
        # No stray temp files survive a successful save.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_save_leaves_previous_file_intact(self, tmp_path,
                                                     monkeypatch):
        path = tmp_path / "study.jsonl.gz"
        save_dataset(self.make(), path)
        good = path.read_bytes()
        bad = self.make()
        boom = RuntimeError("simulated serialization fault")

        class Unserializable:
            def to_dict(self):
                raise boom

        bad.devices = [Unserializable()]
        with pytest.raises(RuntimeError):
            save_dataset(bad, path)
        assert path.read_bytes() == good
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unknown_kind_is_skipped_with_count(self, tmp_path):
        import gzip
        import json

        path = tmp_path / "future.jsonl.gz"
        save_dataset(self.make(), path)
        lines = gzip.decompress(path.read_bytes()).splitlines()
        lines.append(json.dumps(
            {"kind": "hologram", "data": {"x": 1}}
        ).encode())
        lines.append(json.dumps(
            {"kind": "hologram", "data": {"x": 2}}
        ).encode())
        path.write_bytes(gzip.compress(b"\n".join(lines) + b"\n"))
        restored = load_dataset(path)
        assert restored.n_devices == 2
        assert restored.metadata["skipped_records"] == 2

    def test_truncated_gzip_raises_corrupt_error(self, tmp_path):
        from repro.dataset.store import DatasetCorruptError

        path = tmp_path / "study.jsonl.gz"
        save_dataset(self.make(), path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(DatasetCorruptError):
            load_dataset(path)

    def test_bit_flipped_payload_raises_corrupt_error(self, tmp_path):
        from repro.dataset.store import DatasetCorruptError

        path = tmp_path / "study.jsonl.gz"
        save_dataset(self.make(), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))
        with pytest.raises(DatasetCorruptError):
            load_dataset(path)

    def test_not_gzip_raises_corrupt_error(self, tmp_path):
        from repro.dataset.store import DatasetCorruptError

        path = tmp_path / "study.jsonl.gz"
        path.write_bytes(b"plain text, not gzip at all")
        with pytest.raises(DatasetCorruptError):
            load_dataset(path)

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "absent.jsonl.gz")
