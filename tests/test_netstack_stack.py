"""Unit tests for the device network stack and fault model."""

import random

import pytest

from repro.core.events import FalsePositiveReason, ProbeVerdict
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.network.dns import DnsServer, TEST_SERVER_DOMAIN


class TestFaultKind:
    def test_system_side_classification(self):
        assert FaultKind.FIREWALL_MISCONFIG.is_system_side
        assert FaultKind.PROXY_MISCONFIG.is_system_side
        assert FaultKind.MODEM_DRIVER_FAILURE.is_system_side
        assert not FaultKind.NETWORK_STALL.is_system_side
        assert not FaultKind.DNS_OUTAGE.is_system_side

    def test_expected_verdicts(self):
        assert (FaultKind.NETWORK_STALL.expected_verdict
                is ProbeVerdict.NETWORK_SIDE_STALL)
        assert (FaultKind.DNS_OUTAGE.expected_verdict
                is ProbeVerdict.DNS_SERVICE_FAULT)
        assert (FaultKind.FIREWALL_MISCONFIG.expected_verdict
                is ProbeVerdict.SYSTEM_SIDE_FAULT)

    def test_false_positive_reasons(self):
        assert FaultKind.NETWORK_STALL.false_positive_reason is None
        assert (FaultKind.DNS_OUTAGE.false_positive_reason
                is FalsePositiveReason.DNS_SERVICE_UNAVAILABLE)
        assert (FaultKind.PROXY_MISCONFIG.false_positive_reason
                is FalsePositiveReason.SYSTEM_SIDE)


class TestActiveFault:
    def test_activity_window(self):
        fault = ActiveFault(FaultKind.NETWORK_STALL, start=10.0,
                            duration=5.0)
        assert not fault.active_at(9.9)
        assert fault.active_at(10.0)
        assert fault.active_at(14.9)
        assert not fault.active_at(15.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ActiveFault(FaultKind.NETWORK_STALL, start=0.0, duration=-1.0)

    def test_infinite_fault(self):
        fault = ActiveFault(FaultKind.NETWORK_STALL, start=0.0,
                            duration=float("inf"))
        assert fault.active_at(1e12)

    def test_window_is_half_open(self):
        """[start, end): live at its first instant, gone at its last."""
        fault = ActiveFault(FaultKind.DNS_OUTAGE, start=100.0,
                            duration=30.0)
        assert fault.end == 130.0
        assert fault.active_at(fault.start)
        assert not fault.active_at(fault.end)

    def test_zero_duration_fault_is_never_active(self):
        fault = ActiveFault(FaultKind.NETWORK_STALL, start=50.0,
                            duration=0.0)
        assert fault.end == fault.start
        assert not fault.active_at(fault.start)
        assert not fault.active_at(fault.end)

    def test_infinite_fault_edges(self):
        """Only recovery clears an infinite fault: active from its
        first instant onward, with an unreachable end."""
        fault = ActiveFault(FaultKind.MODEM_DRIVER_FAILURE, start=7.0,
                            duration=float("inf"))
        assert fault.end == float("inf")
        assert fault.active_at(fault.start)
        assert fault.active_at(float(10**18))
        assert not fault.active_at(fault.start - 1e-9)
        assert not fault.active_at(float("inf"))  # end stays exclusive


class TestStackProbeSurface:
    def test_healthy_stack_answers_everything(self):
        stack = DeviceNetStack()
        assert stack.ping_loopback(0.0, 1.0)[0]
        for server in stack.dns_servers:
            assert stack.ping_dns_server(server, 0.0, 1.0)[0]
            assert stack.resolve(server, TEST_SERVER_DOMAIN, 0.0, 5.0)[0]

    def test_network_stall_blocks_remote_but_not_loopback(self):
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0, 100.0))
        assert stack.ping_loopback(1.0, 1.0)[0]
        server = stack.dns_servers[0]
        assert not stack.ping_dns_server(server, 1.0, 1.0)[0]
        assert not stack.resolve(server, TEST_SERVER_DOMAIN, 1.0, 5.0)[0]

    def test_system_fault_blocks_loopback(self):
        stack = DeviceNetStack()
        stack.inject_fault(
            ActiveFault(FaultKind.FIREWALL_MISCONFIG, 0.0, 100.0)
        )
        assert not stack.ping_loopback(1.0, 1.0)[0]

    def test_dns_outage_blocks_only_resolution(self):
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(FaultKind.DNS_OUTAGE, 0.0, 100.0))
        server = stack.dns_servers[0]
        assert stack.ping_loopback(1.0, 1.0)[0]
        assert stack.ping_dns_server(server, 1.0, 1.0)[0]
        assert not stack.resolve(server, TEST_SERVER_DOMAIN, 1.0, 5.0)[0]

    def test_fault_expires(self):
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0, 10.0))
        assert stack.fault_at(5.0) is not None
        assert stack.fault_at(11.0) is None
        server = stack.dns_servers[0]
        assert stack.resolve(server, TEST_SERVER_DOMAIN, 11.0, 5.0)[0]

    def test_shorten_fault_ends_it_now(self):
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0, 1e9))
        stack.shorten_fault(50.0)
        assert stack.fault_at(51.0) is None

    def test_needs_at_least_one_dns_server(self):
        with pytest.raises(ValueError):
            DeviceNetStack(dns_servers=[])


class TestTrafficSimulation:
    def test_healthy_traffic_produces_inbound(self):
        stack = DeviceNetStack()
        stack.simulate_traffic(0.0, 30.0, random.Random(0))
        assert stack.counters.inbound_in_window(30.0) > 0

    def test_stalled_traffic_has_no_inbound(self):
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL, 0.0, 100.0))
        stack.simulate_traffic(0.0, 30.0, random.Random(0))
        assert stack.counters.outbound_in_window(30.0) > 10
        assert stack.counters.inbound_in_window(30.0) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DeviceNetStack().simulate_traffic(0.0, -1.0, random.Random(0))
