"""Tests for the top-BS deployment-mix analysis (Fig. 11 prose)."""

import pytest

from repro.analysis.isp_bs import top_bs_deployment_mix
from repro.dataset.store import Dataset


class TestTopBsDeploymentMix:
    def test_mix_sums_to_one(self, bs_rich_dataset):
        mix = top_bs_deployment_mix(bs_rich_dataset, top_n=50)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_crowded_areas_dominate_the_top(self, bs_rich_dataset):
        """Fig. 11 prose: top-ranking BSes are mostly in crowded urban
        areas."""
        mix = top_bs_deployment_mix(bs_rich_dataset, top_n=100)
        crowded = (mix.get("TRANSPORT_HUB", 0.0)
                   + mix.get("URBAN_CORE", 0.0)
                   + mix.get("URBAN", 0.0))
        assert crowded > 0.5

    def test_hubs_overrepresented_relative_to_population(
        self, bs_rich_dataset
    ):
        mix = top_bs_deployment_mix(bs_rich_dataset, top_n=100)
        population_share = sum(
            bs.deployment == "TRANSPORT_HUB"
            for bs in bs_rich_dataset.base_stations
        ) / len(bs_rich_dataset.base_stations)
        assert mix.get("TRANSPORT_HUB", 0.0) > 2 * population_share

    def test_requires_inventory_and_failures(self):
        with pytest.raises(ValueError):
            top_bs_deployment_mix(Dataset())
