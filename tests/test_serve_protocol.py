"""Tests for the ingest service wire protocol (framing + acks)."""

import socket
import threading

import pytest

from repro.serve import protocol


def pair():
    left, right = socket.socketpair()
    left.settimeout(2.0)
    right.settimeout(2.0)
    return left, right


class TestRequestFrames:
    def test_round_trip(self):
        client, server = pair()
        try:
            protocol.write_request(client, b"payload-bytes", sender=42)
            sender, payload = protocol.read_request(server)
            assert sender == 42
            assert payload == b"payload-bytes"
        finally:
            client.close()
            server.close()

    def test_empty_payload_round_trips(self):
        client, server = pair()
        try:
            protocol.write_request(client, b"")
            sender, payload = protocol.read_request(server)
            assert sender == 0
            assert payload == b""
        finally:
            client.close()
            server.close()

    def test_back_to_back_frames_stay_delimited(self):
        client, server = pair()
        try:
            protocol.write_request(client, b"one", sender=1)
            protocol.write_request(client, b"two", sender=2)
            assert protocol.read_request(server) == (1, b"one")
            assert protocol.read_request(server) == (2, b"two")
        finally:
            client.close()
            server.close()

    def test_oversized_frame_rejected_from_header_alone(self):
        """The limit check costs the reader only the 12 header bytes —
        the declared body is never buffered."""
        client, server = pair()
        try:
            client.sendall(protocol.REQUEST_HEADER.pack(10_000, 7))
            with pytest.raises(protocol.FrameTooLarge) as excinfo:
                protocol.read_request(server, max_frame_bytes=1_000)
            assert excinfo.value.declared == 10_000
            assert excinfo.value.limit == 1_000
        finally:
            client.close()
            server.close()

    def test_clean_close_between_frames(self):
        client, server = pair()
        client.close()
        try:
            with pytest.raises(protocol.ConnectionClosed) as excinfo:
                protocol.read_request(server)
            assert excinfo.value.clean
        finally:
            server.close()

    def test_mid_frame_close_is_not_clean(self):
        client, server = pair()
        try:
            client.sendall(b"\x00\x00\x00")  # 3 of 12 header bytes
            client.close()
            with pytest.raises(protocol.ConnectionClosed) as excinfo:
                protocol.read_request(server)
            assert not excinfo.value.clean
        finally:
            server.close()

    def test_stalled_sender_hits_frame_timeout(self):
        client, server = pair()
        server.settimeout(0.05)
        try:
            client.sendall(b"\x00\x00")  # stall mid-header
            with pytest.raises(protocol.FrameTimeout):
                protocol.read_request(server)
        finally:
            client.close()
            server.close()


class TestAcks:
    def test_round_trip_with_retry_delay(self):
        client, server = pair()
        try:
            protocol.write_ack(server, protocol.ACK_RETRY_AFTER, 2.5)
            status, delay = protocol.read_ack(client)
            assert status == protocol.ACK_RETRY_AFTER
            assert delay == pytest.approx(2.5)
        finally:
            client.close()
            server.close()

    def test_ok_carries_zero_delay(self):
        client, server = pair()
        try:
            protocol.write_ack(server, protocol.ACK_OK)
            assert protocol.read_ack(client) == (protocol.ACK_OK, 0.0)
        finally:
            client.close()
            server.close()

    def test_negative_delay_clamps_to_zero(self):
        client, server = pair()
        try:
            protocol.write_ack(server, protocol.ACK_UNAVAILABLE, -3.0)
            _status, delay = protocol.read_ack(client)
            assert delay == 0.0
        finally:
            client.close()
            server.close()

    def test_unknown_status_is_a_protocol_error(self):
        client, server = pair()
        try:
            client.sendall(protocol.ACK_FRAME.pack(0x7F, 0))
            with pytest.raises(protocol.ProtocolError):
                protocol.read_ack(server)
        finally:
            client.close()
            server.close()


class TestRecvExact:
    def test_reassembles_fragmented_sends(self):
        client, server = pair()
        payload = bytes(range(200)) * 10

        def trickle():
            for index in range(0, len(payload), 97):
                client.sendall(payload[index:index + 97])

        thread = threading.Thread(target=trickle)
        thread.start()
        try:
            assert protocol.recv_exact(server, len(payload)) == payload
        finally:
            thread.join()
            client.close()
            server.close()
