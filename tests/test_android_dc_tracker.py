"""Unit tests for DcTracker setup campaigns."""

import random

from repro.android.dc_tracker import DcTracker
from repro.android.state_machine import DataConnectionState
from repro.core.events import FailureType
from repro.radio.modem import Modem
from repro.radio.rat import RAT
from repro.core.signal import SignalLevel
from repro.simtime import SimClock


class ScriptedChannel:
    """Scripted bearer admission: pops causes, then admits."""

    bs_id = 42

    def __init__(self, causes):
        self.causes = list(causes)
        self.attempts = 0

    def admit_bearer(self, rat, signal_level, rng):
        self.attempts += 1
        if self.causes:
            return self.causes.pop(0)
        return None


def make_tracker(retry_delays=(5.0, 10.0)) -> DcTracker:
    clock = SimClock()
    modem = Modem({RAT.LTE}, random.Random(0),
                  internal_error_rate=0.0, deep_fade_timeout_rate=0.0)
    return DcTracker(clock, modem, retry_delays_s=retry_delays)


class TestEstablish:
    def test_immediate_success(self):
        tracker = make_tracker()
        result = tracker.establish(ScriptedChannel([]), RAT.LTE,
                                   SignalLevel.LEVEL_4)
        assert result.success
        assert result.attempts == 1
        assert not result.failures
        assert tracker.connection.state is DataConnectionState.ACTIVE

    def test_retry_then_success(self):
        tracker = make_tracker()
        result = tracker.establish(
            ScriptedChannel(["SIGNAL_LOST"]), RAT.LTE, SignalLevel.LEVEL_3
        )
        assert result.success
        assert result.attempts == 2
        assert len(result.failures) == 1
        assert result.failures[0].error_code == "SIGNAL_LOST"
        # The retry waited out the first backoff step.
        assert result.elapsed_s >= 5.0

    def test_permanent_cause_stops_immediately(self):
        tracker = make_tracker()
        result = tracker.establish(
            ScriptedChannel(["MISSING_UNKNOWN_APN", None]),
            RAT.LTE, SignalLevel.LEVEL_3,
        )
        assert not result.success
        assert result.attempts == 1
        assert result.final_cause == "MISSING_UNKNOWN_APN"
        assert tracker.connection.state is DataConnectionState.INACTIVE

    def test_retries_exhausted(self):
        tracker = make_tracker(retry_delays=(5.0,))
        result = tracker.establish(
            ScriptedChannel(["SIGNAL_LOST"] * 5), RAT.LTE,
            SignalLevel.LEVEL_3,
        )
        assert not result.success
        assert result.attempts == 2  # initial + one retry
        assert tracker.connection.state is DataConnectionState.INACTIVE

    def test_each_failed_attempt_surfaces_one_event(self):
        tracker = make_tracker(retry_delays=(5.0, 10.0, 20.0))
        result = tracker.establish(
            ScriptedChannel(["SIGNAL_LOST", "NO_SERVICE", "PPP_TIMEOUT"]),
            RAT.LTE, SignalLevel.LEVEL_3,
        )
        assert result.success
        assert [f.error_code for f in result.failures] == [
            "SIGNAL_LOST", "NO_SERVICE", "PPP_TIMEOUT"
        ]
        assert all(
            f.failure_type is FailureType.DATA_SETUP_ERROR
            for f in result.failures
        )

    def test_listener_receives_failures(self):
        tracker = make_tracker()
        seen = []
        tracker.register_setup_error_listener(seen.append)
        tracker.establish(ScriptedChannel(["SIGNAL_LOST"]), RAT.LTE,
                          SignalLevel.LEVEL_3)
        assert len(seen) == 1
        assert seen[0].context["bs_id"] == 42

    def test_event_context_captures_radio_state(self):
        tracker = make_tracker()
        seen = []
        tracker.register_setup_error_listener(seen.append)
        tracker.establish(ScriptedChannel(["SIGNAL_LOST"]), RAT.LTE,
                          SignalLevel.LEVEL_1, apn="ims")
        context = seen[0].context
        assert context["rat"] is RAT.LTE
        assert context["signal_level"] is SignalLevel.LEVEL_1
        assert context["apn"] == "ims"


class TestTeardownAndRecovery:
    def test_teardown_from_active(self):
        tracker = make_tracker()
        tracker.establish(ScriptedChannel([]), RAT.LTE,
                          SignalLevel.LEVEL_4)
        tracker.teardown()
        assert tracker.connection.state is DataConnectionState.INACTIVE

    def test_teardown_when_inactive_is_noop(self):
        tracker = make_tracker()
        tracker.teardown()
        assert tracker.connection.state is DataConnectionState.INACTIVE

    def test_cleanup_and_reconnect(self):
        """Stage-1 recovery: tear down and re-establish."""
        tracker = make_tracker()
        tracker.establish(ScriptedChannel([]), RAT.LTE,
                          SignalLevel.LEVEL_4)
        result = tracker.cleanup_and_reconnect(
            ScriptedChannel([]), RAT.LTE, SignalLevel.LEVEL_4
        )
        assert result.success
        assert tracker.connection.state is DataConnectionState.ACTIVE

    def test_establish_while_active_tears_down_first(self):
        tracker = make_tracker()
        tracker.establish(ScriptedChannel([]), RAT.LTE,
                          SignalLevel.LEVEL_4)
        result = tracker.establish(ScriptedChannel([]), RAT.LTE,
                                   SignalLevel.LEVEL_2)
        assert result.success
