"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess with a small fleet, the way a
downstream user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2_000:]
    return result.stdout


def test_quickstart(tmp_path):
    output = run_example("quickstart.py", "150")
    assert "Table 1" in output
    assert "5G vs non-5G" in output


def test_stall_diagnosis():
    output = run_example("stall_diagnosis.py")
    assert "vanilla Android (60/60/60 s)" in output
    assert "TIMP trigger (21/6/16 s)" in output
    assert "SYSTEM_SIDE_FAULT" in output


def test_enhancement_ab():
    output = run_example("enhancement_ab.py", "150")
    assert "frequency reduction" in output
    assert "Paper anchors" in output


def test_rat_policy_playground():
    output = run_example("rat_policy_playground.py")
    assert "level-0 5G" in output
    assert "stability-compatible    : 0.0%" in output


def test_backend_pipeline():
    output = run_example("backend_pipeline.py", "120")
    assert "accepted=" in output
    assert "streaming vs batch" in output
    assert "lossy transport" in output
    assert "UNEXPLAINED" in output


def test_render_figures(tmp_path):
    output = run_example("render_figures.py", "150", str(tmp_path))
    assert "figures in" in output
    svgs = list(tmp_path.glob("*.svg"))
    assert len(svgs) >= 15


@pytest.mark.slow
def test_timp_fitting():
    output = run_example("timp_fitting.py", timeout=420)
    assert "Annealed probations" in output
    assert "Monte-Carlo validation" in output
