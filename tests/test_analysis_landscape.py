"""Tests for the Android-phone landscape analysis (Sec. 3.2)."""

import numpy as np
import pytest

from repro import quantities
from repro.analysis.landscape import (
    compare_5g,
    compare_android_versions,
    per_model_stats,
)
from repro.dataset.store import Dataset


class TestPerModelStats:
    def test_covers_the_models_present(self, vanilla_dataset):
        stats = per_model_stats(vanilla_dataset)
        assert len(stats) >= 30  # all 34 modulo sampling gaps

    def test_prevalence_correlates_with_table1(self, vanilla_dataset):
        """The measured per-model prevalence must track Table 1."""
        published = {row.model: row.prevalence
                     for row in quantities.TABLE1}
        measured = {s.model: s.prevalence
                    for s in per_model_stats(vanilla_dataset)
                    if s.n_devices >= 20}
        common = sorted(set(measured) & set(published))
        assert len(common) >= 15
        a = np.array([published[m] for m in common])
        b = np.array([measured[m] for m in common])
        correlation = np.corrcoef(a, b)[0, 1]
        assert correlation > 0.5

    def test_frequency_correlates_with_table1(self, vanilla_dataset):
        published = {row.model: row.frequency
                     for row in quantities.TABLE1}
        measured = {s.model: s.frequency
                    for s in per_model_stats(vanilla_dataset)
                    if s.n_devices >= 30}
        common = sorted(set(measured) & set(published))
        a = np.array([published[m] for m in common])
        b = np.array([measured[m] for m in common])
        assert np.corrcoef(a, b)[0, 1] > 0.4

    def test_rows_carry_capabilities(self, vanilla_dataset):
        stats = {s.model: s for s in per_model_stats(vanilla_dataset)}
        if 33 in stats:
            assert stats[33].has_5g
            assert stats[33].android_version == "10.0"
        if 3 in stats:
            assert not stats[3].has_5g
            assert stats[3].android_version == "9.0"


class TestGroupComparisons:
    def test_5g_phones_fail_more(self, vanilla_dataset):
        """Figs. 6-7: 5G models show higher prevalence and frequency."""
        comparison = compare_5g(vanilla_dataset)
        assert comparison.prevalence_a > comparison.prevalence_b
        assert comparison.frequency_a > comparison.frequency_b

    def test_5g_fair_comparison_holds(self, vanilla_dataset):
        """Footnote 4: restricting non-5G to Android 10 preserves it."""
        comparison = compare_5g(vanilla_dataset, fair=True)
        assert comparison.frequency_a > comparison.frequency_b
        assert "Android 10" in comparison.group_b

    def test_android_10_fails_more(self, vanilla_dataset):
        """Figs. 8-9: Android 10 shows more failures than Android 9."""
        comparison = compare_android_versions(vanilla_dataset)
        assert comparison.frequency_a > comparison.frequency_b

    def test_android_fair_comparison_holds(self, vanilla_dataset):
        comparison = compare_android_versions(vanilla_dataset, fair=True)
        assert comparison.frequency_a > comparison.frequency_b
        assert "non-5G" in comparison.group_a

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            compare_5g(Dataset())
