"""Tests for the landscape analyses: the Android-phone landscape of
Sec. 3.2 and the cross-scenario sweep landscape."""

import json

import numpy as np
import pytest

from repro import quantities
from repro.analysis.columnar import compute_analysis_block
from repro.analysis.landscape import (
    compare_5g,
    compare_android_versions,
    comparison_table,
    per_model_stats,
    render_scenario_landscape,
    scenario_landscape_dict,
    scenario_row,
)
from repro.dataset.store import Dataset


class TestPerModelStats:
    def test_covers_the_models_present(self, vanilla_dataset):
        stats = per_model_stats(vanilla_dataset)
        assert len(stats) >= 30  # all 34 modulo sampling gaps

    def test_prevalence_correlates_with_table1(self, vanilla_dataset):
        """The measured per-model prevalence must track Table 1."""
        published = {row.model: row.prevalence
                     for row in quantities.TABLE1}
        measured = {s.model: s.prevalence
                    for s in per_model_stats(vanilla_dataset)
                    if s.n_devices >= 20}
        common = sorted(set(measured) & set(published))
        assert len(common) >= 15
        a = np.array([published[m] for m in common])
        b = np.array([measured[m] for m in common])
        correlation = np.corrcoef(a, b)[0, 1]
        assert correlation > 0.5

    def test_frequency_correlates_with_table1(self, vanilla_dataset):
        published = {row.model: row.frequency
                     for row in quantities.TABLE1}
        measured = {s.model: s.frequency
                    for s in per_model_stats(vanilla_dataset)
                    if s.n_devices >= 30}
        common = sorted(set(measured) & set(published))
        a = np.array([published[m] for m in common])
        b = np.array([measured[m] for m in common])
        assert np.corrcoef(a, b)[0, 1] > 0.4

    def test_rows_carry_capabilities(self, vanilla_dataset):
        stats = {s.model: s for s in per_model_stats(vanilla_dataset)}
        if 33 in stats:
            assert stats[33].has_5g
            assert stats[33].android_version == "10.0"
        if 3 in stats:
            assert not stats[3].has_5g
            assert stats[3].android_version == "9.0"


class TestGroupComparisons:
    def test_5g_phones_fail_more(self, vanilla_dataset):
        """Figs. 6-7: 5G models show higher prevalence and frequency."""
        comparison = compare_5g(vanilla_dataset)
        assert comparison.prevalence_a > comparison.prevalence_b
        assert comparison.frequency_a > comparison.frequency_b

    def test_5g_fair_comparison_holds(self, vanilla_dataset):
        """Footnote 4: restricting non-5G to Android 10 preserves it."""
        comparison = compare_5g(vanilla_dataset, fair=True)
        assert comparison.frequency_a > comparison.frequency_b
        assert "Android 10" in comparison.group_b

    def test_android_10_fails_more(self, vanilla_dataset):
        """Figs. 8-9: Android 10 shows more failures than Android 9."""
        comparison = compare_android_versions(vanilla_dataset)
        assert comparison.frequency_a > comparison.frequency_b

    def test_android_fair_comparison_holds(self, vanilla_dataset):
        comparison = compare_android_versions(vanilla_dataset, fair=True)
        assert comparison.frequency_a > comparison.frequency_b
        assert "non-5G" in comparison.group_a

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            compare_5g(Dataset())


class TestScenarioLandscape:
    def rows(self, vanilla_dataset):
        busy = scenario_row(
            "busy", compute_analysis_block(vanilla_dataset),
            engine="batch", tags=("stress",),
            counters={'fleet_failures_total{type="DATA_STALL"}': 12},
        )
        # A pack that recorded nothing: empty-dataset block.
        quiet = scenario_row("quiet", compute_analysis_block(Dataset()),
                             description="no traffic at all")
        return [busy, quiet]

    def test_zero_failure_row_stays_nan_free(self, vanilla_dataset):
        rows = self.rows(vanilla_dataset)
        table = comparison_table(rows)
        assert "| quiet |" in table
        assert "nan" not in table.lower()
        assert "| 0 | 0.0000 | 0.00 | 0.0 | 0.00% | - |" in table

    def test_report_renders_both_rows(self, vanilla_dataset):
        report = render_scenario_landscape(self.rows(vanilla_dataset))
        assert "## busy" in report and "## quiet" in report
        assert "no failures recorded" in report
        assert 'metric fleet_failures_total{type="DATA_STALL"}: 12' \
            in report
        assert "nan" not in report.lower()

    def test_extremes_order_rows_by_metric(self, vanilla_dataset):
        document = scenario_landscape_dict(self.rows(vanilla_dataset))
        extremes = document["extremes"]["prevalence"]
        assert extremes["min"]["scenario"] == "quiet"
        assert extremes["max"]["scenario"] == "busy"
        # JSON-serializable end to end (no tuples, no NaN).
        json.dumps(document, allow_nan=False)

    def test_empty_landscape_renders(self):
        report = render_scenario_landscape([])
        assert "0 scenario(s)" in report
        assert scenario_landscape_dict([])["extremes"] == {}
