"""Integration tests: full component chains, end to end.

These drive the real mechanisms against each other without the fleet
scheduler's scripting — organic BS admission, live faults flowing
through the kernel counters into the detector, the prober measuring
them, and the recovery engine fixing them on a shared virtual clock.
"""

import random

import pytest

from repro.android.data_stall import VanillaDataStallDetector
from repro.android.dc_tracker import DcTracker
from repro.android.recovery import (
    RecoveryEngine,
    TIMP_RECOVERY_POLICY,
    VANILLA_RECOVERY_POLICY,
)
from repro.core.events import ProbeVerdict
from repro.core.study import NationwideStudy, run_ab_evaluation
from repro.dataset.store import load_dataset, save_dataset
from repro.fleet.scenario import ScenarioConfig
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.network.topology import NationalTopology, TopologyConfig
from repro.core.signal import SignalLevel
from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP
from repro.radio.modem import Modem
from repro.radio.rat import RAT
from repro.simtime import SimClock


class TestStallLifecycle:
    """Fault -> kernel counters -> detector -> prober -> recovery."""

    def build(self, policy, fault_duration=10_000.0):
        clock = SimClock()
        stack = DeviceNetStack()
        detector = VanillaDataStallDetector(clock, stack.counters)
        rng = random.Random(7)
        stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL,
                                       start=0.0,
                                       duration=fault_duration))
        stack.simulate_traffic(0.0, 30.0, rng)
        clock.advance(30.0)
        return clock, stack, detector, rng

    def test_detector_sees_the_injected_fault(self):
        clock, stack, detector, _rng = self.build(VANILLA_RECOVERY_POLICY)
        event = detector.check()
        assert event is not None
        assert detector.stall_suspected

    def test_prober_confirms_network_side(self):
        clock, stack, detector, _rng = self.build(VANILLA_RECOVERY_POLICY)
        detector.check()
        volley = NetworkStateProber(clock).probe_once(stack, 1.0, 5.0)
        assert volley.verdict is ProbeVerdict.NETWORK_SIDE_STALL

    def test_recovery_engine_fixes_the_stall(self):
        clock, stack, detector, rng = self.build(VANILLA_RECOVERY_POLICY)
        detector.check()
        engine = RecoveryEngine(clock, stack, detector,
                                VANILLA_RECOVERY_POLICY, rng)
        resolution = engine.run()
        assert resolution.resolved_by in (1, 2, 3)
        assert stack.fault_at(clock.now()) is None

    def test_timp_engine_is_faster_than_vanilla(self):
        _clock_v, stack_v, detector_v, rng_v = self.build(
            VANILLA_RECOVERY_POLICY
        )
        clock_v = detector_v.clock
        detector_v.check()
        vanilla = RecoveryEngine(clock_v, stack_v, detector_v,
                                 VANILLA_RECOVERY_POLICY, rng_v).run()

        clock_t, stack_t, detector_t, rng_t = self.build(
            TIMP_RECOVERY_POLICY
        )
        detector_t.check()
        timp = RecoveryEngine(clock_t, stack_t, detector_t,
                              TIMP_RECOVERY_POLICY, rng_t).run()
        assert timp.duration_s < vanilla.duration_s

    def test_engine_rides_out_short_faults(self):
        clock, stack, detector, rng = self.build(
            VANILLA_RECOVERY_POLICY, fault_duration=35.0
        )
        detector.check()
        engine = RecoveryEngine(clock, stack, detector,
                                VANILLA_RECOVERY_POLICY, rng)
        resolution = engine.run()
        # The 60 s probation outlives the 35 s fault: auto-recovery.
        assert resolution.resolved_by == 0
        assert resolution.duration_s <= 6.0  # detected at t=30


class TestOrganicSetup:
    """DcTracker against a real BS with organic admission behaviour."""

    def test_setup_against_healthy_topology(self):
        topology = NationalTopology(
            TopologyConfig(n_base_stations=300, seed=3)
        )
        rng = random.Random(5)
        clock = SimClock()
        modem = Modem({RAT.LTE}, rng)
        tracker = DcTracker(clock, modem)
        successes = 0
        for _ in range(50):
            bs = topology.sample_bs(rng, ISP.A,
                                    DeploymentClass.SUBURBAN, RAT.LTE)
            result = tracker.establish(bs, RAT.LTE, SignalLevel.LEVEL_4)
            if result.success:
                successes += 1
                tracker.teardown()
        assert successes > 35

    def test_hub_cells_fail_more_than_suburban(self):
        """Same hardware, same propensity — the deployment environment
        alone (density-driven EMM trouble, load, interference) makes
        hub cells reject more bearers (Sec. 3.3)."""
        from repro.network.basestation import BaseStation, make_identity

        rng = random.Random(6)

        def failure_rate(deployment, level):
            bs = BaseStation(
                bs_id=1,
                identity=make_identity(ISP.A, 1),
                isp=ISP.A,
                supported_rats=frozenset({RAT.LTE}),
                deployment=deployment,
                failure_propensity=1.0,
            )
            failures = sum(
                bs.admit_bearer(RAT.LTE, level, rng) is not None
                for _ in range(2_000)
            )
            return failures / 2_000

        hub = failure_rate(DeploymentClass.TRANSPORT_HUB,
                           SignalLevel.LEVEL_5)
        suburb = failure_rate(DeploymentClass.SUBURBAN,
                              SignalLevel.LEVEL_4)
        assert hub > 1.5 * suburb


class TestStudyPipeline:
    SCENARIO = ScenarioConfig(
        n_devices=300, seed=21,
        topology=TopologyConfig(n_base_stations=300, seed=22),
    )

    def test_study_runs_and_renders(self):
        result = NationwideStudy(scenario=self.SCENARIO).run()
        assert result.general.n_failures > 1_000
        text = result.render()
        assert "GPRS_REGISTRATION_FAIL" in text

    def test_ab_evaluation_pipeline(self):
        vanilla, patched, evaluation = run_ab_evaluation(self.SCENARIO)
        assert vanilla.metadata["arm"] == "vanilla"
        assert patched.metadata["arm"] == "patched"
        assert evaluation.frequency_reduction_5g > 0.0

    def test_dataset_persistence_roundtrip(self, tmp_path,
                                           vanilla_dataset):
        path = tmp_path / "nationwide.jsonl.gz"
        save_dataset(vanilla_dataset, path)
        restored = load_dataset(path)
        assert restored.n_failures == vanilla_dataset.n_failures
        assert restored.n_devices == vanilla_dataset.n_devices
        result = NationwideStudy.analyze(restored)
        assert result.general.prevalence == pytest.approx(
            len({f.device_id for f in vanilla_dataset.failures})
            / vanilla_dataset.n_devices
        )
