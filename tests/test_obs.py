"""Tests for the observability layer (``repro.obs``).

The contract under test: metrics are *deterministic observables* of a
scenario — a sharded run must report byte-identical metrics to the
serial run (commutative-merge discipline), and leaving metrics off must
be a true no-op (identical records, no ``metrics`` metadata, zero
registry state mutated anywhere).
"""

import json

import pytest

from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.obs import (
    DURATION_BUCKETS_S,
    NULL_REGISTRY,
    SUM_SCALE,
    MetricsMergeError,
    MetricsRegistry,
    NullRegistry,
    counter_key,
    deterministic_view,
    empty_snapshot,
    get_registry,
    merge_snapshots,
    use_registry,
)
from repro.obs.prom import parse_prometheus, to_prometheus


def tiny_scenario(n_devices=60, seed=11, **kwargs) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=n_devices,
        seed=seed,
        topology=TopologyConfig(n_base_stations=120, seed=seed + 1),
        **kwargs,
    )


def canonical(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True)


class TestRegistryBasics:
    def test_counter_accumulates_with_labels(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 2, method="get")
        registry.inc("requests_total", method="get")
        registry.inc("requests_total", method="put")
        counters = registry.snapshot()["counters"]
        assert counters['requests_total{method="get"}'] == 3
        assert counters['requests_total{method="put"}'] == 1

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.inc("requests_total", -1)

    def test_inc_key_matches_inc(self):
        direct, keyed = MetricsRegistry(), MetricsRegistry()
        direct.inc("x_total", 2, kind="a")
        keyed.inc_key(counter_key("x_total", kind="a"), 2)
        assert canonical(direct.snapshot()) == canonical(keyed.snapshot())

    def test_gauge_merge_is_max(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 3.0)
        registry.gauge_set("depth", 1.0)
        assert registry.snapshot()["gauges"]["depth"] == 3.0

    def test_span_nesting_builds_slash_paths(self):
        registry = MetricsRegistry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
            with registry.span("inner"):
                pass
        timings = registry.span_timings()
        assert set(timings) == {"outer", "outer/inner"}
        assert timings["outer/inner"]["count"] == 2
        assert timings["outer"]["total_s"] >= timings["outer"]["max_s"]


class TestHistograms:
    def test_bucket_bounds_are_inclusive_with_inf_overflow(self):
        registry = MetricsRegistry()
        for value in (1.0, 1.5, 5.0, 99_999.0):
            registry.observe("lat_s", value, buckets=(1, 5, 15))
        hist = registry.snapshot()["histograms"]["lat_s"]
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # the final slot is the +Inf overflow bucket.
        assert hist["bounds"] == [1.0, 5.0, 15.0]
        assert hist["counts"] == [1, 2, 0, 1]
        assert hist["count"] == 4

    def test_sum_accumulated_as_scaled_int(self):
        registry = MetricsRegistry()
        registry.observe("lat_s", 0.1, buckets=(1,))
        registry.observe("lat_s", 0.2, buckets=(1,))
        hist = registry.snapshot()["histograms"]["lat_s"]
        # Integer micro-units: no float-addition-order dependence.
        assert hist["sum_scaled"] == int(round(0.1 * SUM_SCALE)) + int(
            round(0.2 * SUM_SCALE))

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.observe("lat_s", 1.0, buckets=(5, 1))

    def test_mid_run_bounds_change_rejected(self):
        registry = MetricsRegistry()
        registry.observe("lat_s", 1.0, buckets=(1, 5))
        with pytest.raises(ValueError):
            registry.observe("lat_s", 1.0, buckets=(1, 10))

    def test_same_bounds_object_fast_path_still_validates_value(self):
        registry = MetricsRegistry()
        registry.observe("lat_s", 10.0, buckets=DURATION_BUCKETS_S)
        registry.observe("lat_s", 10.0, buckets=DURATION_BUCKETS_S)
        assert registry.snapshot()["histograms"]["lat_s"]["count"] == 2

    def test_get_histogram_shares_state_with_observe(self):
        registry = MetricsRegistry()
        registry.observe("lat_s", 1.0, buckets=(1, 5))
        registry.get_histogram("lat_s").observe(2.0)
        assert registry.snapshot()["histograms"]["lat_s"]["count"] == 2


class TestMerge:
    def _registry(self, *pairs):
        registry = MetricsRegistry()
        for name, amount in pairs:
            registry.inc(name, amount)
            registry.observe("obs_s", float(amount), buckets=(1, 5, 15))
        return registry

    def test_merge_is_commutative(self):
        a = self._registry(("x_total", 1), ("y_total", 7)).snapshot()
        b = self._registry(("x_total", 4)).snapshot()
        assert canonical(merge_snapshots([a, b])) == canonical(
            merge_snapshots([b, a]))

    def test_merge_is_associative(self):
        parts = [self._registry(("x_total", n)).snapshot()
                 for n in (1, 2, 3)]
        left = merge_snapshots(
            [merge_snapshots(parts[:2]), parts[2]])
        right = merge_snapshots(
            [parts[0], merge_snapshots(parts[1:])])
        assert canonical(left) == canonical(right)

    def test_merge_sums_counters_and_buckets(self):
        a = self._registry(("x_total", 2)).snapshot()
        b = self._registry(("x_total", 5)).snapshot()
        merged = merge_snapshots([a, b])
        assert merged["counters"]["x_total"] == 7
        assert merged["histograms"]["obs_s"]["count"] == 2

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat_s", 1.0, buckets=(1, 5))
        b.observe("lat_s", 1.0, buckets=(1, 10))
        with pytest.raises(MetricsMergeError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == empty_snapshot()


class TestNullRegistry:
    def test_default_registry_is_noop(self):
        registry = get_registry()
        assert isinstance(registry, NullRegistry)
        assert not registry.enabled
        registry.inc("x_total")
        registry.inc_key(counter_key("x_total"))
        registry.observe("lat_s", 1.0)
        registry.gauge_set("g", 1.0)
        with registry.span("phase"):
            pass
        assert NULL_REGISTRY.snapshot() == empty_snapshot()

    def test_use_registry_restores_on_exit(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_none_is_passthrough(self):
        with use_registry(None):
            assert get_registry() is NULL_REGISTRY


class TestSimulatorIntegration:
    def test_metrics_off_leaves_no_trace(self):
        plain = FleetSimulator(tiny_scenario()).run()
        assert "metrics" not in plain.metadata
        assert "spans" not in plain.metadata["execution"]

    def test_metrics_on_does_not_change_records(self):
        plain = FleetSimulator(tiny_scenario()).run()
        metered = FleetSimulator(tiny_scenario(metrics=True)).run()
        assert [r.to_dict() for r in plain.failures] == [
            r.to_dict() for r in metered.failures]
        assert [r.to_dict() for r in plain.transitions] == [
            r.to_dict() for r in metered.transitions]

    def test_serial_metrics_cover_fleet_and_android(self):
        dataset = FleetSimulator(tiny_scenario(metrics=True)).run()
        metrics = dataset.metadata["metrics"]
        counters = metrics["counters"]
        assert counters["fleet_devices_total"] == 60
        assert any(k.startswith("android_dc_transitions_total")
                   for k in counters)
        assert any(k.startswith("fleet_failures_total") for k in counters)
        assert metrics["histograms"]["fleet_device_events"]["count"] == 60
        spans = dataset.metadata["execution"]["spans"]
        assert spans["fleet.simulate_shard/fleet.device"]["count"] == 60

    def test_sharded_metrics_byte_identical_to_serial(self):
        # The tentpole guarantee.  Chaos-free scenario: the chaos drain
        # loop is shard-local, so only deterministic fleet/android/
        # pipeline observables are in scope (see docs/observability.md).
        serial = FleetSimulator(tiny_scenario(metrics=True)).run()
        shard2 = FleetSimulator(tiny_scenario(metrics=True)).run(workers=2)
        shard3 = FleetSimulator(tiny_scenario(metrics=True)).run(
            workers=2, n_shards=5)
        expected = canonical(serial.metadata["metrics"])
        assert canonical(shard2.metadata["metrics"]) == expected
        assert canonical(shard3.metadata["metrics"]) == expected

    def test_sharded_spans_report_per_shard_phases(self):
        dataset = FleetSimulator(tiny_scenario(metrics=True)).run(
            workers=2, n_shards=3)
        spans = dataset.metadata["execution"]["spans"]
        assert spans["parallel.shard"]["count"] == 3
        assert spans["parallel.shard/fleet.simulate_shard"]["count"] == 3
        assert spans["parallel.supervise"]["count"] == 1

    def test_deterministic_view_drops_spans(self):
        registry = MetricsRegistry()
        with registry.span("phase"):
            registry.inc("x_total")
        view = deterministic_view(registry.snapshot())
        assert "spans" not in view
        assert view["counters"]["x_total"] == 1


class TestPrometheus:
    def test_round_trip_is_exact(self):
        dataset = FleetSimulator(tiny_scenario(metrics=True)).run()
        from repro.obs.export import dataset_metrics_snapshot

        snapshot = dataset_metrics_snapshot(dataset)
        parsed = parse_prometheus(to_prometheus(snapshot))
        assert canonical(parsed["counters"]) == canonical(
            snapshot["counters"])
        assert canonical(parsed["histograms"]) == canonical(
            snapshot["histograms"])

    def test_histogram_rendered_cumulatively(self):
        registry = MetricsRegistry()
        registry.observe("lat_s", 0.5, buckets=(1, 5))
        registry.observe("lat_s", 3.0, buckets=(1, 5))
        text = to_prometheus(registry.snapshot())
        assert 'lat_s_bucket{le="1.0"} 1' in text
        assert 'lat_s_bucket{le="5.0"} 2' in text
        assert 'lat_s_bucket{le="+Inf"} 2' in text
        assert "lat_s_count 2" in text


class TestCliExport:
    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        assert main(["study", "--devices", "40", "--seed", "3",
                     "--metrics-out", str(out),
                     "--prom-out", str(prom)]) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["counters"]["fleet_devices_total"] == 40
        parsed = parse_prometheus(prom.read_text())
        assert parsed["counters"]["fleet_devices_total"] == 40
