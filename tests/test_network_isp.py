"""Unit tests for ISP profiles."""

from repro import quantities
from repro.network.isp import ISP, ISP_PROFILES, profile_for


class TestIspProfiles:
    def test_three_isps(self):
        assert len(ISP_PROFILES) == 3

    def test_bs_shares_match_the_paper(self):
        for isp in ISP:
            assert (ISP_PROFILES[isp].bs_share
                    == quantities.ISP_BS_SHARE[isp.label])

    def test_subscriber_shares_sum_to_one(self):
        total = sum(p.subscriber_share for p in ISP_PROFILES.values())
        assert abs(total - 1.0) < 1e-9

    def test_frequency_ordering_matches_prose(self):
        """Sec. 3.3: median frequency ISP-B > ISP-C > ISP-A."""
        assert (ISP_PROFILES[ISP.B].median_frequency_mhz
                > ISP_PROFILES[ISP.C].median_frequency_mhz
                > ISP_PROFILES[ISP.A].median_frequency_mhz)

    def test_frequency_penalty_follows_frequency(self):
        """Higher band -> more path loss -> worse coverage (ISP-B)."""
        assert (ISP_PROFILES[ISP.B].frequency_penalty_db
                > ISP_PROFILES[ISP.C].frequency_penalty_db
                > ISP_PROFILES[ISP.A].frequency_penalty_db)

    def test_profile_for_lookup(self):
        assert profile_for(ISP.A).isp is ISP.A

    def test_labels(self):
        assert ISP.A.label == "ISP-A"

    def test_mcc_is_china(self):
        assert all(p.mcc == 460 for p in ISP_PROFILES.values())

    def test_mncs_are_distinct(self):
        mncs = [p.mnc for p in ISP_PROFILES.values()]
        assert len(set(mncs)) == 3
