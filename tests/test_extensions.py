"""Tests for the Sec. 4.1 / Sec. 6 extensions: Android 11, passive
monitoring, and infrastructure sharing."""

import random

import pytest

from repro.android.android11 import (
    ANDROID_11_RECOVERY_POLICY,
    Android11Policy,
    android11_inherits_the_problems,
)
from repro.core.signal import SignalLevel
from repro.monitoring.passive import PassiveStallMonitor
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.network.basestation import (
    BaseStation,
    DeploymentClass,
    make_identity,
)
from repro.network.isp import ISP
from repro.network.topology import NationalTopology, TopologyConfig
from repro.radio.rat import RAT
from repro.simtime import SimClock


class TestAndroid11:
    def test_both_problems_persist(self):
        """Sec. 6: the aggressive RAT policy and the lagging recovery
        both survive into Android 11."""
        findings = android11_inherits_the_problems()
        assert findings["aggressive_rat_transition"]
        assert findings["lagging_stall_recovery"]

    def test_policy_is_blind_5g(self):
        from repro.android.rat_policy import RatCandidate

        chosen = Android11Policy().select(
            None,
            [RatCandidate(RAT.LTE, SignalLevel.LEVEL_4),
             RatCandidate(RAT.NR, SignalLevel.LEVEL_1)],
        )
        assert chosen.rat is RAT.NR

    def test_recovery_is_still_one_minute(self):
        assert ANDROID_11_RECOVERY_POLICY.probations_s == (
            60.0, 60.0, 60.0
        )


class TestPassiveMonitor:
    def _stack_with_stall(self, duration: float) -> DeviceNetStack:
        stack = DeviceNetStack()
        stack.inject_fault(
            ActiveFault(FaultKind.NETWORK_STALL, 0.0, duration)
        )
        return stack

    def test_measures_duration_plus_traffic_gap(self):
        clock = SimClock()
        monitor = PassiveStallMonitor(clock)
        measurement = monitor.measure(self._stack_with_stall(40.0),
                                      traffic_gap_s=8.0)
        assert 40.0 <= measurement.duration_s <= 50.0
        assert measurement.detection_lag_s >= 8.0

    def test_injects_nothing(self):
        clock = SimClock()
        measurement = PassiveStallMonitor(clock).measure(
            self._stack_with_stall(20.0), traffic_gap_s=2.0
        )
        assert measurement.probe_bytes == 0

    def test_no_stall_measures_zero(self):
        measurement = PassiveStallMonitor(SimClock()).measure(
            DeviceNetStack(), traffic_gap_s=5.0
        )
        assert measurement.duration_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PassiveStallMonitor(SimClock(), poll_interval_s=0.0)
        with pytest.raises(ValueError):
            PassiveStallMonitor(SimClock()).measure(
                DeviceNetStack(), traffic_gap_s=-1.0
            )


class TestInfrastructureSharing:
    def hub(self, density_factor: float) -> BaseStation:
        return BaseStation(
            bs_id=1,
            identity=make_identity(ISP.A, 1),
            isp=ISP.A,
            supported_rats=frozenset({RAT.LTE}),
            deployment=DeploymentClass.TRANSPORT_HUB,
            failure_propensity=1.0,
            density_factor=density_factor,
        )

    def test_sharing_reduces_hub_failures(self):
        rng = random.Random(3)

        def rate(bs):
            return sum(
                bs.admit_bearer(RAT.LTE, SignalLevel.LEVEL_5,
                                rng) is not None
                for _ in range(3_000)
            ) / 3_000

        assert rate(self.hub(0.55)) < rate(self.hub(1.0))

    def test_density_factor_validation(self):
        with pytest.raises(ValueError):
            self.hub(0.0)
        with pytest.raises(ValueError):
            self.hub(1.5)

    def test_topology_flag_applies_to_dense_cells_only(self):
        topology = NationalTopology(TopologyConfig(
            n_base_stations=800, seed=13, infrastructure_sharing=True,
        ))
        dense = {DeploymentClass.TRANSPORT_HUB,
                 DeploymentClass.URBAN_CORE}
        saw_dense = False
        for bs in topology.base_stations:
            if bs.deployment in dense:
                saw_dense = True
                assert bs.density_factor == 0.55
            else:
                assert bs.density_factor == 1.0
        assert saw_dense

    def test_default_topology_is_unshared(self, topology):
        assert all(bs.density_factor == 1.0
                   for bs in topology.base_stations)
