"""End-to-end tests for the live ingest service.

Every test talks to a real TCP socket: the batcher/transport stack on
one side, the threaded :class:`IngestService` on the other, so the
overload behaviours (backpressure acks, breaker unavailability,
slow-loris deadlines, drain acks) are exercised through the same code
path production traffic would take.
"""

import json
import random
import threading
import time
from contextlib import contextmanager

import pytest

from repro.chaos.config import ChaosConfig
from repro.chaos.reconcile import payload_key, reconcile
from repro.dataset.records import record_identity
from repro.monitoring.uploader import UploadBatcher
from repro.obs import ThreadSafeRegistry, use_registry
from repro.serve import (
    CLOSED,
    OPEN,
    IngestService,
    PayloadTooLarge,
    RetryAfter,
    ServeConfig,
    ServeConnectionError,
    ServeUnavailable,
    SocketTransport,
)
from repro.serve.harness import (
    drain_fleet,
    drive_fleet,
    malformed_flood,
    reconcile_fleet,
    stalled_clients,
    synthetic_records,
)


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


@contextmanager
def serving(config=None, server=None):
    service = IngestService(server=server, config=config).start()
    try:
        yield service
    finally:
        service.stop(drain=False)


@contextmanager
def blocked_ingest(service):
    """Gate the worker inside ``server.receive`` so payloads pile up
    in the admission queue deterministically."""
    entered = threading.Event()
    release = threading.Event()
    real = service.server.receive

    def gated(payload):
        entered.set()
        release.wait(timeout=10.0)
        real(payload)

    service.server.receive = gated
    try:
        yield entered, release
    finally:
        release.set()
        service.server.receive = real


def dataset(server):
    """The accepted records as a sorted list of canonical JSON lines —
    the byte-level basis for run-equivalence assertions."""
    return sorted(
        json.dumps(record.to_dict(), sort_keys=True, default=str)
        for record in server.records
    )


class TestHappyPath:
    def test_fleet_round_trip_reconciles_clean(self):
        records = synthetic_records(n_devices=6, per_device=3)
        registry = ThreadSafeRegistry()
        with use_registry(registry), serving() as service:
            drive = drive_fleet(records, *service.address)
            drain_fleet(drive)
            assert wait_until(lambda: service.server.accepted == 18)
            report = reconcile_fleet(drive, service.server,
                                     service=service)
            drive.close()
        assert report.ok
        assert report.accepted == 18
        assert report.emitted == 18
        snapshot = registry.snapshot()
        assert snapshot["counters"]["serve_admitted_total"] == 18
        assert snapshot["counters"]["serve_frames_total"] == 18
        assert snapshot["counters"]["ingest_accepted_total"] == 18
        stages = [key for key in snapshot["histograms"]
                  if key.startswith("serve_stage_seconds")]
        assert any('stage="ingest"' in key for key in stages)
        assert any('stage="queue"' in key for key in stages)

    def test_duplicate_sends_are_absorbed_by_dedup(self):
        record = synthetic_records(1, 1)[0]
        with serving() as service:
            batcher = UploadBatcher(
                transport=SocketTransport(*service.address, sender=1)
            )
            payload_size = batcher.enqueue(record)
            assert batcher.maybe_flush(True) == payload_size
            batcher.enqueue(record)
            batcher.maybe_flush(True)
            assert wait_until(
                lambda: service.server.accepted == 1
                and service.server.duplicates == 1
            )

    def test_malformed_payloads_are_acked_and_quarantined(self):
        with serving() as service:
            acks = malformed_flood(*service.address, frames=5)
            assert acks == {"ok": 5}
            assert wait_until(
                lambda: service.server.quarantined == 5
            )


class TestBackpressure:
    def test_full_queue_acks_retry_after(self):
        config = ServeConfig(queue_capacity=1, retry_after_s=2.0)
        with serving(config) as service:
            with blocked_ingest(service) as (entered, release):
                filler = SocketTransport(*service.address, sender=100)
                filler(b"filler-1")   # worker takes this and blocks
                assert entered.wait(timeout=5.0)
                filler(b"filler-2")   # fills the single queue slot
                probe = SocketTransport(*service.address, sender=101)
                with pytest.raises(RetryAfter) as excinfo:
                    probe(b"overflow")
                assert excinfo.value.retry_after_s >= 2.0
                assert service.queue.rejected == 1
                release.set()
            # Backpressure was advisory, not loss: a later retry lands.
            assert wait_until(lambda: service.queue.depth == 0)
            probe(b"overflow")
            assert wait_until(lambda: service.server.quarantined == 3)
            filler.close()
            probe.close()

    def test_batcher_folds_server_retry_after_into_backoff(self):
        config = ServeConfig(queue_capacity=1, retry_after_s=2.0)
        record = synthetic_records(1, 1)[0]
        with serving(config) as service:
            batcher = UploadBatcher(
                transport=SocketTransport(*service.address, sender=5),
                base_backoff_s=0.5, max_backoff_s=60.0, jitter=0.5,
                rng=random.Random(7),
            )
            with blocked_ingest(service) as (entered, release):
                filler = SocketTransport(*service.address, sender=100)
                filler(b"filler-1")   # worker takes this and blocks
                assert entered.wait(timeout=5.0)
                filler(b"filler-2")   # fills the single queue slot
                batcher.enqueue(record)
                batcher.maybe_flush(True, now=100.0)
                # The payload stayed spooled and the server's delay
                # (>= 2s) beat the local jittered draw (<= 0.75s).
                assert batcher.pending_payloads == 1
                assert batcher.retry_signals == 1
                assert batcher.next_attempt_s >= 102.0
                release.set()
            assert wait_until(lambda: service.queue.depth == 0)
            for step in range(1, 20):
                if not batcher.pending_payloads:
                    break
                batcher.maybe_flush(True, now=100.0 + step * 120.0)
                time.sleep(0.01)
            assert wait_until(lambda: service.server.accepted == 1)
            report = reconcile(
                {record_identity(record)}, service.server, [batcher],
                service=service,
            )
        assert report.ok
        assert report.accepted == 1
        assert report.retry_signals == 1


class TestProtection:
    def test_oversized_payload_is_rejected_permanently(self):
        config = ServeConfig(max_frame_bytes=64)
        record = synthetic_records(1, 1)[0]
        with serving(config) as service:
            batcher = UploadBatcher(
                transport=SocketTransport(*service.address, sender=3)
            )
            batcher.enqueue(record)
            batcher.maybe_flush(True, now=1.0)
            assert batcher.rejected_payloads == 1
            assert batcher.pending_payloads == 0
            assert batcher.rejected_keys == [record_identity(record)]
            assert wait_until(lambda: service.oversized_frames == 1)
            report = reconcile(
                {record_identity(record)}, service.server, [batcher],
                service=service,
            )
        assert report.ok
        assert report.rejected == 1
        assert report.accepted == 0

    def test_raw_oversized_frame_raises_payload_too_large(self):
        config = ServeConfig(max_frame_bytes=64)
        with serving(config) as service:
            transport = SocketTransport(*service.address)
            with pytest.raises(PayloadTooLarge):
                transport(b"x" * 65)

    def test_slow_loris_connections_hit_the_read_deadline(self):
        config = ServeConfig(read_deadline_s=0.2)
        with serving(config) as service:
            closed = stalled_clients(*service.address, clients=3,
                                     wait_s=3.0)
            assert closed == 3
            assert wait_until(lambda: service.deadline_closes == 3)

    def test_connection_cap_refuses_newcomers(self):
        config = ServeConfig(max_connections=1, read_deadline_s=5.0)
        with serving(config) as service:
            first = SocketTransport(*service.address, sender=1)
            first(b"keepalive")  # holds the only connection slot
            second = SocketTransport(*service.address, sender=2)
            with pytest.raises(ServeConnectionError):
                second(b"refused")
            assert wait_until(
                lambda: service.connections_refused >= 1
            )
            first.close()
            second.close()


class TestBreaker:
    def test_breaker_trips_serves_unavailable_and_recovers(self):
        config = ServeConfig(breaker_threshold=2, breaker_reset_s=0.4)
        records = synthetic_records(1, 2)
        registry = ThreadSafeRegistry()
        with use_registry(registry), serving(config) as service:
            service.server.take_down()
            transport = SocketTransport(*service.address, sender=0)
            batcher = UploadBatcher(transport=transport)
            batcher.enqueue(records[0])
            batcher.maybe_flush(True)  # acked OK, then ingest faults
            assert wait_until(
                lambda: service.breaker.state == OPEN
            )
            # Front end now refuses up front, hinting at the timer.
            with pytest.raises(ServeUnavailable) as excinfo:
                transport(b"while-open")
            assert excinfo.value.retry_after_s is not None
            assert service.unavailable_acks >= 1
            # Downstream heals; the breaker probes and closes, and the
            # owned (requeued) payload finally lands.
            service.server.bring_up()
            assert wait_until(
                lambda: service.breaker.state == CLOSED
                and service.server.accepted == 1
            )
            batcher.enqueue(records[1])
            batcher.maybe_flush(True)
            assert wait_until(lambda: service.server.accepted == 2)
            assert service.breaker.trips >= 1
            assert service.breaker.recoveries >= 1
            transport.close()
        counters = registry.snapshot()["counters"]
        assert counters[
            'serve_breaker_transitions_total{from="closed",to="open"}'
        ] >= 1
        assert counters[
            'serve_breaker_transitions_total'
            '{from="half-open",to="closed"}'
        ] >= 1
        assert counters['serve_ingest_faults_total'] >= 2


class TestOverloadPolicies:
    def test_shed_oldest_losses_are_classified_not_mysteries(self):
        config = ServeConfig(queue_capacity=2, policy="shed-oldest")
        records = synthetic_records(n_devices=4, per_device=1)
        keys = {record_identity(r) for r in records}
        with serving(config) as service:
            batchers = []
            with blocked_ingest(service) as (entered, _release):
                for index, record in enumerate(records):
                    batcher = UploadBatcher(
                        transport=SocketTransport(
                            *service.address, sender=index
                        )
                    )
                    batcher.enqueue(record)
                    batcher.maybe_flush(True)
                    batchers.append(batcher)
                    if index == 0:
                        # Ensure the worker holds the first payload so
                        # the remaining three race only the queue.
                        assert entered.wait(timeout=5.0)
            # 4 acked, capacity 2 + 1 in the worker's hand: exactly
            # one was shed, with its identity accounted.
            assert len(service.shed_keys) == 1
            assert wait_until(lambda: service.server.accepted == 3)
            report = reconcile(keys, service.server, batchers,
                               service=service)
            for batcher in batchers:
                batcher.transport.close()
        assert report.ok
        assert report.accepted == 3
        assert report.server_shed == 1

    def test_queued_payloads_reconcile_as_in_flight(self):
        records = synthetic_records(n_devices=3, per_device=1)
        with serving() as service:
            with blocked_ingest(service) as (entered, release):
                hold = SocketTransport(*service.address, sender=99)
                hold(b"worker-bait")
                assert entered.wait(timeout=5.0)
                keys = set()
                for index, record in enumerate(records):
                    batcher = UploadBatcher(
                        transport=SocketTransport(
                            *service.address, sender=index
                        )
                    )
                    batcher.enqueue(record)
                    batcher.maybe_flush(True)
                    keys.add(record_identity(record))
                # All three acked but none ingested: the service owns
                # them, and says so.
                assert service.queued_keys == keys
                report = reconcile(keys, service.server, [],
                                   service=service)
                assert report.ok
                assert report.in_flight == 3
                release.set()
            assert wait_until(lambda: service.server.accepted == 3)
            hold.close()


class TestDrainResume:
    def test_graceful_drain_flushes_and_checkpoints(self, tmp_path):
        records = synthetic_records(n_devices=4, per_device=2)
        path = tmp_path / "serve.ckpt"
        service = IngestService().start()
        drive = drive_fleet(records, *service.address)
        drain_fleet(drive)
        assert wait_until(lambda: service.server.accepted == 8)
        result = service.stop(checkpoint_path=path)
        drive.close()
        assert result.drained
        assert result.leftover == 0
        assert result.checkpoint_path == str(path)
        snapshot = json.loads(path.read_text())
        assert snapshot["format"] == 1
        assert snapshot["server"]["accepted"] == 8
        assert snapshot["queue"] == []

    def test_interrupted_run_resumes_to_identical_dataset(
        self, tmp_path
    ):
        records = synthetic_records(n_devices=5, per_device=3)
        # -- control: one uninterrupted run ----------------------------
        with serving() as control:
            drive = drive_fleet(records, *control.address)
            drain_fleet(drive)
            assert wait_until(lambda: control.server.accepted == 15)
            control_dataset = dataset(control.server)
            drive.close()
        # -- interrupted: backend down, SIGTERM-style stop mid-run -----
        config = ServeConfig(breaker_threshold=2, breaker_reset_s=60.0,
                             drain_timeout_s=0.3)
        path = tmp_path / "serve.ckpt"
        service = IngestService(config=config).start()
        service.server.take_down()
        drive = drive_fleet(records, *service.address)
        result = service.stop(checkpoint_path=path)
        # Nothing could be ingested: every record is either still
        # spooled client-side or checkpointed from the queue.
        assert service.server.accepted == 0
        assert path.exists()
        snapshot = json.loads(path.read_text())
        assert len(snapshot["queue"]) == result.leftover
        report = reconcile(drive.emitted, service.server,
                           drive.batchers.values(), service=snapshot)
        assert report.ok
        assert report.accepted == 0
        assert report.in_flight == 15
        # -- resume and finish the run ---------------------------------
        resumed = IngestService.resume(path, config=ServeConfig())
        resumed.server.bring_up()
        resumed.start()
        drive = drive_fleet([], *resumed.address, drive=drive)
        drain_fleet(drive)
        assert wait_until(lambda: resumed.server.accepted == 15)
        final = reconcile_fleet(drive, resumed.server, service=resumed)
        assert final.ok
        assert final.accepted == 15
        # The resumed run converged on byte-identical records.
        assert dataset(resumed.server) == control_dataset
        resumed.stop()
        drive.close()


class TestPayloadOwnership:
    """Regressions for the serve-layer ownership guarantees: an acked
    payload is ingested, checkpointed, or shed *with accounting* —
    never silently dropped, and never able to wedge the queue."""

    def test_resume_restores_admission_accounting(self, tmp_path):
        """A drain checkpoint carries the admission counters and shed
        identities; resume must restore them, or pre-restart sheds
        reconcile as unexplained losses."""
        config = ServeConfig(queue_capacity=2, policy="shed-oldest")
        records = synthetic_records(n_devices=4, per_device=1)
        path = tmp_path / "serve.ckpt"
        service = IngestService(config=config).start()
        with blocked_ingest(service) as (entered, _release):
            for index, record in enumerate(records):
                batcher = UploadBatcher(
                    transport=SocketTransport(
                        *service.address, sender=index
                    )
                )
                batcher.enqueue(record)
                batcher.maybe_flush(True)
                batcher.transport.close()
                if index == 0:
                    assert entered.wait(timeout=5.0)
        assert len(service.shed_keys) == 1
        shed_before = list(service.shed_keys)
        service.stop(checkpoint_path=path)
        summary_before = service.queue.summary()
        resumed = IngestService.resume(path, config=config)
        assert resumed.shed_keys == shed_before
        summary_after = resumed.queue.summary()
        for counter in ("admitted", "rejected", "shed", "shed_bytes"):
            assert summary_after[counter] == summary_before[counter]
        assert (summary_after["depth_high_watermark"]
                >= summary_before["depth_high_watermark"])

    def test_drain_without_checkpoint_sheds_with_accounting(self):
        """stop(drain=True) with no checkpoint path must turn queued
        payloads into accounted server-side sheds, not silent loss."""
        config = ServeConfig(breaker_threshold=2, breaker_reset_s=60.0,
                             drain_timeout_s=0.2)
        records = synthetic_records(n_devices=5, per_device=1)
        registry = ThreadSafeRegistry()
        with use_registry(registry):
            service = IngestService(config=config).start()
            service.server.take_down()
            drive = drive_fleet(records, *service.address)
            result = service.stop(checkpoint_path=None)
            drive.close()
        assert result.leftover > 0
        assert result.checkpoint_path is None
        assert len(service.shed_keys) == result.leftover
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            "serve_drain_discarded_total"] == result.leftover
        report = reconcile(drive.emitted, service.server,
                           drive.batchers.values(), service=service)
        assert report.ok, report.render()
        assert report.server_shed == result.leftover

    def test_poison_payload_is_quarantined_not_requeued_forever(self):
        """One payload that deterministically faults downstream must
        exhaust its retry budget and be shed with identity accounting
        — not wedge every payload queued behind it."""
        config = ServeConfig(ingest_retry_limit=3,
                             breaker_threshold=100)
        poison = synthetic_records(n_devices=1, per_device=1,
                                   seed=13)[0]
        good = synthetic_records(n_devices=3, per_device=1)
        registry = ThreadSafeRegistry()
        with use_registry(registry), serving(config) as service:
            poison_key = record_identity(poison)
            real = service.server.receive

            def faulting(payload):
                if payload_key(payload) == poison_key:
                    raise ValueError("downstream chokes on this one")
                real(payload)

            service.server.receive = faulting
            batchers = []
            for index, record in enumerate([poison] + good):
                batcher = UploadBatcher(
                    transport=SocketTransport(
                        *service.address, sender=index
                    )
                )
                batcher.enqueue(record)
                batcher.maybe_flush(True)
                batchers.append(batcher)
            assert wait_until(lambda: service.server.accepted == 3)
            assert wait_until(lambda: service.poisoned == 1)
            service.server.receive = real
            assert poison_key in service.shed_keys
            report = reconcile(
                {record_identity(r) for r in [poison] + good},
                service.server, batchers, service=service,
            )
            for batcher in batchers:
                batcher.transport.close()
        assert report.ok, report.render()
        assert report.accepted == 3
        assert report.server_shed == 1
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            "serve_poison_quarantined_total"] == 1
        assert snapshot["counters"][
            'serve_shed_total{policy="poison"}'] == 1

    def test_transient_outage_does_not_consume_retry_budget(self):
        """ServiceUnavailable faults are the downstream's fault, not
        the payload's: an outage longer than the retry budget must not
        quarantine owned payloads as poison."""
        config = ServeConfig(ingest_retry_limit=2,
                             breaker_threshold=1000,
                             breaker_reset_s=0.01)
        record = synthetic_records(n_devices=1, per_device=1)[0]
        with serving(config) as service:
            service.server.take_down()
            batcher = UploadBatcher(
                transport=SocketTransport(*service.address, sender=1)
            )
            batcher.enqueue(record)
            batcher.maybe_flush(True)
            # Give the worker time for well over ingest_retry_limit
            # failed attempts against the downed backend.
            assert wait_until(lambda: service.ingest_faults > 10)
            assert service.poisoned == 0
            service.server.bring_up()
            assert wait_until(lambda: service.server.accepted == 1)
            batcher.transport.close()

    def test_connections_gauge_falls_back_to_zero_on_close(self):
        """serve_connections_active is a level, not a high-water mark:
        it must fall when clients disconnect."""
        registry = ThreadSafeRegistry()

        def gauge():
            return registry.snapshot()["gauges"].get(
                "serve_connections_active"
            )

        with use_registry(registry), serving() as service:
            first = SocketTransport(*service.address, sender=1)
            second = SocketTransport(*service.address, sender=2)
            record_a, record_b = synthetic_records(2, 1)
            for transport, record in ((first, record_a),
                                      (second, record_b)):
                batcher = UploadBatcher(transport=transport)
                batcher.enqueue(record)
                batcher.maybe_flush(True)
            assert wait_until(lambda: gauge() == 2.0)
            first.close()
            assert wait_until(lambda: gauge() == 1.0)
            second.close()
            assert wait_until(lambda: gauge() == 0.0)


class TestChaosSoak:
    def test_chaotic_fleet_reconciles_with_zero_unexplained(self):
        chaos = ChaosConfig(
            seed=99, drop_rate=0.15, duplicate_rate=0.1,
            corrupt_rate=0.08, reorder_rate=0.05,
        )
        records = synthetic_records(n_devices=10, per_device=4)
        with serving() as service:
            drive = drive_fleet(records, *service.address, chaos=chaos)
            drain_fleet(drive)
            assert wait_until(lambda: service.queue.depth == 0)
            time.sleep(0.05)  # let the worker finish the last payload
            report = reconcile_fleet(drive, service.server,
                                     service=service)
            drive.close()
        assert report.ok, report.render()
        assert report.emitted == 40
        assert (report.accepted + report.explained_losses
                == report.emitted)
        # Chaos actually did something worth explaining.
        assert report.duplicates + report.quarantined > 0
