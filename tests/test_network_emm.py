"""Unit tests for the EMM state machine."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.network.emm import EmmContext, EmmState


def registered_context(density: float = 0.0) -> EmmContext:
    context = EmmContext(deployment_density=density)
    context.state = EmmState.REGISTERED
    return context


class TestAttach:
    def test_attach_from_deregistered(self):
        context = EmmContext(deployment_density=0.0)
        rng = random.Random(0)
        # Density 0 still has a 1% barring floor; retry a few times.
        for _ in range(10):
            if context.attach(rng) is None:
                break
        assert context.state is EmmState.REGISTERED

    def test_attach_when_registered_is_noop(self):
        context = registered_context()
        assert context.attach(random.Random(0)) is None

    def test_dense_cell_bars_attaches(self):
        context = EmmContext(deployment_density=1.0)
        rng = random.Random(0)
        barred = 0
        for _ in range(200):
            if context.attach(rng) == "EMM_ACCESS_BARRED":
                barred += 1
            else:
                context.detach()  # re-attempt from scratch
        assert barred > 20
        assert context.barred_attempts == barred

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            EmmContext(deployment_density=1.5)


class TestTrackingAreaUpdate:
    def test_tau_requires_registered(self):
        context = EmmContext()
        with pytest.raises(ValueError):
            context.begin_tracking_area_update()

    def test_tau_completes_in_sparse_cell(self):
        context = registered_context(density=0.0)
        context.begin_tracking_area_update()
        # Sparse cells have ~0.25% churn; one roll almost surely passes.
        result = context.complete_tracking_area_update(random.Random(1))
        assert result is None
        assert context.state is EmmState.REGISTERED

    def test_tau_can_fail_in_dense_cell(self):
        failures = 0
        for seed in range(100):
            context = registered_context(density=1.0)
            context.begin_tracking_area_update()
            if context.complete_tracking_area_update(
                random.Random(seed)
            ) == "INVALID_EMM_STATE":
                failures += 1
                assert context.state is EmmState.DEREGISTERED
        assert failures > 5

    def test_complete_without_begin_rejected(self):
        with pytest.raises(ValueError):
            registered_context().complete_tracking_area_update(
                random.Random(0)
            )


class TestBearerRequestCheck:
    def test_unregistered_yields_invalid_emm_state(self):
        context = EmmContext()
        assert (context.check_bearer_request(random.Random(0))
                == "INVALID_EMM_STATE")

    def test_sparse_cell_mostly_passes(self):
        context = registered_context(density=0.05)
        rng = random.Random(0)
        outcomes = [context.check_bearer_request(rng) for _ in range(500)]
        ok = sum(1 for o in outcomes if o is None)
        assert ok > 450

    def test_dense_cell_fails_often_with_emm_codes(self):
        """The hub phenomenon of Sec. 3.3."""
        context = registered_context(density=0.95)
        rng = random.Random(0)
        outcomes = [context.check_bearer_request(rng) for _ in range(500)]
        failures = [o for o in outcomes if o is not None]
        assert len(failures) > 80
        assert {"EMM_ACCESS_BARRED", "INVALID_EMM_STATE"} & set(failures)


class TestProbabilities:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_barring_monotone_in_density(self, a, b):
        if a > b:
            a, b = b, a
        assert (EmmContext(deployment_density=a).barring_probability()
                <= EmmContext(deployment_density=b).barring_probability())

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_probabilities_are_probabilities(self, density):
        context = EmmContext(deployment_density=density)
        assert 0.0 <= context.barring_probability() <= 1.0
        assert 0.0 <= context.churn_probability() <= 1.0

    def test_history_tracks_transitions(self):
        context = EmmContext()
        context.detach()
        assert EmmState.DEREGISTERED_INITIATED in (
            context.history + (context.state,)
        )
