"""Tests for the ISP/BS landscape analysis (Sec. 3.3)."""

import numpy as np
import pytest

from repro.analysis.decomposition import (
    error_code_decomposition,
    layer_decomposition,
)
from repro.analysis.isp_bs import (
    bs_failure_ranking,
    bs_failure_summary,
    fit_zipf,
    normalized_prevalence_by_level,
    normalized_prevalence_by_rat_level,
    per_isp_stats,
    per_rat_bs_prevalence,
    prevalence_by_level,
)
from repro.core.errorcodes import ProtocolLayer
from repro.dataset.store import Dataset


class TestTable2Decomposition:
    def test_top10_includes_the_papers_leaders(self, vanilla_dataset):
        rows = error_code_decomposition(vanilla_dataset, top=10)
        codes = [row.code for row in rows]
        assert codes[0] == "GPRS_REGISTRATION_FAIL"
        assert "SIGNAL_LOST" in codes[:5]

    def test_shares_descend_and_cumulate_near_the_paper(
        self, vanilla_dataset
    ):
        rows = error_code_decomposition(vanilla_dataset, top=10)
        shares = [row.share for row in rows]
        assert shares == sorted(shares, reverse=True)
        assert 0.38 <= sum(shares) <= 0.62  # paper: 46.7%

    def test_layers_span_the_stack(self, vanilla_dataset):
        """Sec. 3.2: causes cover physical, link, and network layers."""
        rows = error_code_decomposition(vanilla_dataset, top=10)
        layers = {row.layer for row in rows}
        assert ProtocolLayer.PHYSICAL in layers
        assert ProtocolLayer.NETWORK in layers

    def test_layer_decomposition_sums_to_one(self, vanilla_dataset):
        shares = layer_decomposition(vanilla_dataset)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            error_code_decomposition(Dataset())


class TestBsRanking:
    def test_ranking_is_descending(self, vanilla_dataset):
        ranking = bs_failure_ranking(vanilla_dataset)
        assert (np.diff(ranking) <= 0).all()

    def test_zipf_fit_quality(self, vanilla_dataset):
        """Fig. 11: the ranking is Zipf-like (a = 0.82 in the paper)."""
        fit = fit_zipf(bs_failure_ranking(vanilla_dataset))
        assert 0.4 <= fit.a <= 2.0
        assert fit.r_squared > 0.7

    def test_zipf_fit_recovers_exact_zipf(self):
        ranks = np.arange(1, 200, dtype=float)
        counts = 17.12 / ranks**0.82
        fit = fit_zipf(counts)
        assert fit.a == pytest.approx(0.82, abs=0.01)
        assert fit.b == pytest.approx(17.12, rel=0.05)
        assert fit.r_squared > 0.999

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_zipf(np.array([5.0]))

    def test_summary_shape(self, vanilla_dataset):
        """Fig. 11 prose: median << mean << max."""
        summary = bs_failure_summary(vanilla_dataset)
        assert summary["median"] < summary["mean"] < summary["max"]


class TestIspDiscrepancy:
    def test_isp_b_is_worst(self, vanilla_dataset):
        """Figs. 12-13: ISP-B > ISP-A > ISP-C in prevalence."""
        stats = {s.isp: s for s in per_isp_stats(vanilla_dataset)}
        assert stats["ISP-B"].prevalence > stats["ISP-A"].prevalence
        assert stats["ISP-A"].prevalence > stats["ISP-C"].prevalence

    def test_frequency_ordering_matches(self, vanilla_dataset):
        stats = {s.isp: s for s in per_isp_stats(vanilla_dataset)}
        assert stats["ISP-B"].frequency > stats["ISP-C"].frequency

    def test_device_counts_follow_subscriber_share(self, vanilla_dataset):
        stats = {s.isp: s for s in per_isp_stats(vanilla_dataset)}
        assert stats["ISP-A"].n_devices > stats["ISP-B"].n_devices


class TestRatBsPrevalence:
    def test_3g_is_least_failure_prone(self, bs_rich_dataset):
        """Fig. 14: 3G BSes show lower failure prevalence than 2G/4G.

        Needs the BS-rich fixture — at saturation (every BS failed at
        least once) the per-RAT ordering is meaningless.
        """
        prevalence = per_rat_bs_prevalence(bs_rich_dataset)
        assert prevalence["3G"] < prevalence["2G"]
        assert prevalence["3G"] < prevalence["4G"]
        assert all(v < 0.95 for v in prevalence.values())

    def test_values_are_fractions(self, vanilla_dataset):
        prevalence = per_rat_bs_prevalence(vanilla_dataset)
        assert all(0.0 <= v <= 1.0 for v in prevalence.values())

    def test_requires_bs_inventory(self):
        with pytest.raises(ValueError):
            per_rat_bs_prevalence(Dataset())


class TestNormalizedPrevalence:
    def test_fig15_shape(self, vanilla_dataset):
        """Fig. 15: monotone decrease over levels 0-4, then the hub
        anomaly — level 5 exceeds every level 1-4 value."""
        series = normalized_prevalence_by_level(vanilla_dataset)
        assert series[0] > series[1] > series[2] > series[3] > series[4]
        assert series[5] > max(series[level] for level in (1, 2, 3, 4))

    def test_plain_prevalence_does_not_show_the_anomaly_at_0(
        self, vanilla_dataset
    ):
        """Exposure correction matters: raw prevalence at level 0 is
        small because devices rarely sit at level 0."""
        raw = prevalence_by_level(vanilla_dataset)
        normalized = normalized_prevalence_by_level(vanilla_dataset)
        assert raw[0] < raw[3]
        assert normalized[0] > normalized[3]

    def test_fig16_5g_rows_sit_above_4g(self, vanilla_dataset):
        """Fig. 16: at equal levels, 5G failure likelihood >= 4G's."""
        series = normalized_prevalence_by_rat_level(vanilla_dataset)
        above = sum(
            series["5G"][level] > series["4G"][level]
            for level in range(5)
        )
        assert above >= 3
