"""Unit tests for the data-connection state machine (Fig. 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.android.state_machine import (
    DataConnection,
    DataConnectionState,
    IllegalTransitionError,
)
from repro.simtime import SimClock

_S = DataConnectionState


def connect(clock=None) -> DataConnection:
    return DataConnection(clock or SimClock())


class TestHappyPath:
    def test_initial_state_is_inactive(self):
        assert connect().state is _S.INACTIVE

    def test_full_lifecycle(self):
        dc = connect()
        dc.request_connect()
        assert dc.state is _S.ACTIVATING
        dc.setup_succeeded()
        assert dc.state is _S.ACTIVE
        assert dc.is_connected
        dc.request_disconnect()
        assert dc.state is _S.DISCONNECTING
        dc.disconnected()
        assert dc.state is _S.INACTIVE

    def test_retry_loop(self):
        dc = connect()
        dc.request_connect()
        dc.setup_failed_retryable()
        assert dc.state is _S.RETRYING
        dc.retry()
        assert dc.state is _S.ACTIVATING
        dc.setup_succeeded()
        assert dc.is_connected

    def test_give_up_after_retries(self):
        dc = connect()
        dc.request_connect()
        dc.setup_failed_retryable()
        dc.give_up()
        assert dc.state is _S.INACTIVE

    def test_permanent_failure_goes_inactive(self):
        dc = connect()
        dc.request_connect()
        dc.setup_failed_permanent()
        assert dc.state is _S.INACTIVE

    def test_connection_loss_reenters_retrying(self):
        dc = connect()
        dc.request_connect()
        dc.setup_succeeded()
        dc.connection_lost()
        assert dc.state is _S.RETRYING


class TestIllegalTransitions:
    def test_cannot_activate_twice(self):
        dc = connect()
        dc.request_connect()
        with pytest.raises(IllegalTransitionError):
            dc.request_connect()

    def test_cannot_succeed_from_inactive(self):
        with pytest.raises(IllegalTransitionError):
            connect().setup_succeeded()

    def test_cannot_disconnect_when_not_active(self):
        with pytest.raises(IllegalTransitionError):
            connect().request_disconnect()

    def test_cannot_retry_from_active(self):
        dc = connect()
        dc.request_connect()
        dc.setup_succeeded()
        with pytest.raises(IllegalTransitionError):
            dc.retry()

    def test_can_move_to_reflects_legality(self):
        dc = connect()
        assert dc.can_move_to(_S.ACTIVATING)
        assert not dc.can_move_to(_S.ACTIVE)


class TestObservability:
    def test_history_records_transitions(self):
        dc = connect()
        dc.request_connect()
        dc.setup_succeeded()
        assert [(r.source, r.target) for r in dc.history] == [
            (_S.INACTIVE, _S.ACTIVATING),
            (_S.ACTIVATING, _S.ACTIVE),
        ]

    def test_listeners_fire_in_order(self):
        dc = connect()
        seen = []
        dc.add_listener(lambda record: seen.append(record.target))
        dc.request_connect()
        dc.setup_succeeded()
        assert seen == [_S.ACTIVATING, _S.ACTIVE]

    def test_listener_removal(self):
        dc = connect()
        seen = []
        listener = lambda record: seen.append(record)  # noqa: E731
        dc.add_listener(listener)
        dc.request_connect()
        dc.remove_listener(listener)
        dc.setup_succeeded()
        assert len(seen) == 1

    def test_time_in_state(self):
        clock = SimClock()
        dc = connect(clock)
        dc.request_connect()
        clock.advance(3.0)
        assert dc.time_in_state() == 3.0
        assert dc.entered_at == 0.0

    def test_transition_timestamps_use_clock(self):
        clock = SimClock()
        dc = connect(clock)
        clock.advance(5.0)
        dc.request_connect()
        assert dc.history[0].timestamp == 5.0


class TestStateMachineProperties:
    _ACTIONS = {
        "request_connect": (_S.INACTIVE, _S.ACTIVATING),
        "setup_succeeded": (_S.ACTIVATING, _S.ACTIVE),
        "setup_failed_retryable": (_S.ACTIVATING, _S.RETRYING),
        "setup_failed_permanent": (_S.ACTIVATING, _S.INACTIVE),
        "retry": (_S.RETRYING, _S.ACTIVATING),
        "give_up": (_S.RETRYING, _S.INACTIVE),
        "connection_lost": (_S.ACTIVE, _S.RETRYING),
        "request_disconnect": (_S.ACTIVE, _S.DISCONNECTING),
        "disconnected": (_S.DISCONNECTING, _S.INACTIVE),
    }

    @given(st.lists(st.sampled_from(sorted(_ACTIONS)), max_size=40))
    def test_random_walks_never_corrupt_state(self, actions):
        """Whatever callers do, the machine is always in one of the five
        Fig. 1 states and illegal moves raise cleanly.  (Methods are
        aliases over target states, so legality is judged by the
        (state, target) edge, as in Fig. 1.)"""
        dc = connect()
        for action in actions:
            _source, target = self._ACTIONS[action]
            if dc.can_move_to(target):
                getattr(dc, action)()
                assert dc.state is target
            else:
                with pytest.raises(IllegalTransitionError):
                    getattr(dc, action)()
            assert dc.state in DataConnectionState
