"""Unit tests for the data-rate model."""

import random

from hypothesis import given, strategies as st

from repro.core.signal import ALL_LEVELS, SignalLevel
from repro.radio.rat import ALL_RATS, RAT
from repro.radio.throughput import (
    expected_data_rate_mbps,
    sample_data_rate_mbps,
    transition_increases_rate,
)


class TestExpectedRate:
    def test_rate_monotone_in_level(self):
        for rat in ALL_RATS:
            rates = [expected_data_rate_mbps(rat, level)
                     for level in ALL_LEVELS]
            assert rates == sorted(rates)

    def test_peak_order_follows_generations(self):
        peaks = [expected_data_rate_mbps(rat, SignalLevel.LEVEL_5)
                 for rat in ALL_RATS]
        assert peaks == sorted(peaks)

    def test_5g_peak_is_10gbps_class(self):
        assert expected_data_rate_mbps(RAT.NR, SignalLevel.LEVEL_5) == 10_000

    def test_weak_5g_slower_than_good_4g(self):
        """The Sec. 4.2 argument: 5G at level 0 cannot beat healthy 4G."""
        weak_nr = expected_data_rate_mbps(RAT.NR, SignalLevel.LEVEL_0)
        for level in (SignalLevel.LEVEL_2, SignalLevel.LEVEL_3,
                      SignalLevel.LEVEL_4):
            assert weak_nr < expected_data_rate_mbps(RAT.LTE, level)


class TestTransitionRateCheck:
    def test_4g_to_weak_5g_does_not_increase_rate(self):
        """The four vetoable cases of Fig. 17f have no rate upside."""
        for level in (1, 2, 3, 4):
            assert not transition_increases_rate(
                RAT.LTE, SignalLevel(level), RAT.NR, SignalLevel.LEVEL_0
            )

    def test_4g_to_healthy_5g_increases_rate(self):
        assert transition_increases_rate(
            RAT.LTE, SignalLevel.LEVEL_3, RAT.NR, SignalLevel.LEVEL_3
        )

    def test_same_state_never_increases(self):
        for rat in ALL_RATS:
            for level in ALL_LEVELS:
                assert not transition_increases_rate(rat, level, rat, level)


class TestSampledRate:
    def test_samples_bracket_the_mean(self):
        rng = random.Random(0)
        mean = expected_data_rate_mbps(RAT.LTE, SignalLevel.LEVEL_3)
        samples = [
            sample_data_rate_mbps(RAT.LTE, SignalLevel.LEVEL_3, rng)
            for _ in range(200)
        ]
        assert all(mean / 2 <= s <= mean * 2 for s in samples)

    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_benchmark_finding_weak_5g_downgrades(self, seed):
        """>95% of measured 4G->5G-level-0 transitions lose data rate
        (the paper's small-scale benchmark; here it holds always)."""
        rng = random.Random(seed)
        before = sample_data_rate_mbps(RAT.LTE, SignalLevel.LEVEL_3, rng)
        after = sample_data_rate_mbps(RAT.NR, SignalLevel.LEVEL_0, rng)
        assert after < before
