"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.devices == 2_000
        assert args.seed == 2020
        assert args.save is None

    def test_ab_accepts_overrides(self):
        args = build_parser().parse_args(
            ["ab", "--devices", "500", "--seed", "9"]
        )
        assert args.devices == 500
        assert args.seed == 9

    def test_analyze_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])


class TestValidation:
    """Bad resource arguments die at parse time with a clear message."""

    @pytest.mark.parametrize("flag", ["--workers", "--shards",
                                      "--devices"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_counts_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", flag, value])
        assert "must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--shards"])
    def test_non_integer_counts_rejected(self, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", flag, "two"])
        assert "expected a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["study", "ab", "timp"])
    def test_resume_requires_checkpoint_dir(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--resume"])
        assert ("--resume requires --checkpoint-dir"
                in capsys.readouterr().err)


class TestCommands:
    def test_study_runs_and_saves(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl.gz"
        code = main(["study", "--devices", "120", "--seed", "3",
                     "--save", str(path)])
        assert code == 0
        assert path.exists()
        output = capsys.readouterr().out
        assert "Table 1" in output

    def test_analyze_reads_a_saved_dataset(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl.gz"
        main(["study", "--devices", "120", "--seed", "3",
              "--save", str(path)])
        capsys.readouterr()
        code = main(["analyze", str(path)])
        assert code == 0
        assert "prevalence" in capsys.readouterr().out

    def test_ab_prints_reductions(self, capsys):
        code = main(["ab", "--devices", "150", "--seed", "4"])
        assert code == 0
        assert "frequency reduction" in capsys.readouterr().out

    def test_timp_prints_probations(self, capsys):
        code = main(["timp", "--devices", "200", "--seed", "5"])
        assert code == 0
        assert "annealed probations" in capsys.readouterr().out

    def test_study_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        base = ["study", "--devices", "120", "--seed", "3",
                "--shards", "3", "--checkpoint-dir", str(checkpoint)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "resumed 3/3 shards from checkpoint" in output


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.policy == "reject-newest"
        assert args.queue_capacity == 1024
        assert args.checkpoint is None

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy",
                                       "drop-everything"])

    def test_serve_resume_requires_checkpoint(self, capsys):
        assert main(["serve", "--resume"]) == 2
        assert "--resume requires --checkpoint" in (
            capsys.readouterr().err
        )

    def test_serve_subprocess_drains_on_sigterm(self, tmp_path):
        """`repro serve` binds, ingests one socket upload, and a
        SIGTERM drains to a checkpoint and exits zero."""
        import json
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        from repro.serve import SocketTransport
        from repro.serve.harness import synthetic_records

        repo_root = Path(__file__).resolve().parents[1]
        checkpoint = tmp_path / "serve.ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--checkpoint", str(checkpoint)],
            env=dict(os.environ, PYTHONPATH="src"), cwd=repo_root,
            text=True, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on "), line
            host, port = line.split()[-1].rsplit(":", 1)
            import zlib

            record = synthetic_records(1, 1)[0]
            payload = zlib.compress(
                json.dumps(record, sort_keys=True,
                           default=str).encode()
            )
            with SocketTransport(host, int(port), sender=1) as channel:
                channel(payload)
        finally:
            proc.send_signal(signal.SIGTERM)
            tail = proc.stdout.read()
            code = proc.wait(timeout=60)
        assert code == 0, tail
        assert "drained=True" in tail
        assert "checkpoint written" in tail
        snapshot = json.loads(checkpoint.read_text())
        assert snapshot["server"]["accepted"] == 1
        assert snapshot["queue"] == []
