"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.devices == 2_000
        assert args.seed == 2020
        assert args.save is None

    def test_ab_accepts_overrides(self):
        args = build_parser().parse_args(
            ["ab", "--devices", "500", "--seed", "9"]
        )
        assert args.devices == 500
        assert args.seed == 9

    def test_analyze_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])


class TestValidation:
    """Bad resource arguments die at parse time with a clear message."""

    @pytest.mark.parametrize("flag", ["--workers", "--shards",
                                      "--devices"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_counts_rejected(self, flag, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", flag, value])
        assert "must be a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--shards"])
    def test_non_integer_counts_rejected(self, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", flag, "two"])
        assert "expected a positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["study", "ab", "timp"])
    def test_resume_requires_checkpoint_dir(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "--resume"])
        assert ("--resume requires --checkpoint-dir"
                in capsys.readouterr().err)


class TestCommands:
    def test_study_runs_and_saves(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl.gz"
        code = main(["study", "--devices", "120", "--seed", "3",
                     "--save", str(path)])
        assert code == 0
        assert path.exists()
        output = capsys.readouterr().out
        assert "Table 1" in output

    def test_analyze_reads_a_saved_dataset(self, tmp_path, capsys):
        path = tmp_path / "study.jsonl.gz"
        main(["study", "--devices", "120", "--seed", "3",
              "--save", str(path)])
        capsys.readouterr()
        code = main(["analyze", str(path)])
        assert code == 0
        assert "prevalence" in capsys.readouterr().out

    def test_ab_prints_reductions(self, capsys):
        code = main(["ab", "--devices", "150", "--seed", "4"])
        assert code == 0
        assert "frequency reduction" in capsys.readouterr().out

    def test_timp_prints_probations(self, capsys):
        code = main(["timp", "--devices", "200", "--seed", "5"])
        assert code == 0
        assert "annealed probations" in capsys.readouterr().out

    def test_study_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt"
        base = ["study", "--devices", "120", "--seed", "3",
                "--shards", "3", "--checkpoint-dir", str(checkpoint)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "resumed 3/3 shards from checkpoint" in output


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.policy == "reject-newest"
        assert args.queue_capacity == 1024
        assert args.checkpoint is None

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy",
                                       "drop-everything"])

    def test_serve_resume_requires_checkpoint(self, capsys):
        assert main(["serve", "--resume"]) == 2
        assert "--resume requires --checkpoint" in (
            capsys.readouterr().err
        )

    def test_serve_subprocess_drains_on_sigterm(self, tmp_path):
        """`repro serve` binds, ingests one socket upload, and a
        SIGTERM drains to a checkpoint and exits zero."""
        import json
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        from repro.serve import SocketTransport
        from repro.serve.harness import synthetic_records

        repo_root = Path(__file__).resolve().parents[1]
        checkpoint = tmp_path / "serve.ckpt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--checkpoint", str(checkpoint)],
            env=dict(os.environ, PYTHONPATH="src"), cwd=repo_root,
            text=True, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("serving on "), line
            host, port = line.split()[-1].rsplit(":", 1)
            import zlib

            record = synthetic_records(1, 1)[0]
            payload = zlib.compress(
                json.dumps(record, sort_keys=True,
                           default=str).encode()
            )
            with SocketTransport(host, int(port), sender=1) as channel:
                channel(payload)
        finally:
            proc.send_signal(signal.SIGTERM)
            tail = proc.stdout.read()
            code = proc.wait(timeout=60)
        assert code == 0, tail
        assert "drained=True" in tail
        assert "checkpoint written" in tail
        snapshot = json.loads(checkpoint.read_text())
        assert snapshot["server"]["accepted"] == 1
        assert snapshot["queue"] == []


class TestScrub:
    def _populated_store(self, tmp_path):
        from repro.serve.harness import synthetic_records
        from repro.store import SegmentStore

        store = SegmentStore(tmp_path / "store", seal_records=10,
                             device_bucket=4, time_bucket_s=240.0)
        for record in synthetic_records(8, 5, seed=3):
            store.append(record)
        store.flush()
        return store

    def test_scrub_defaults(self):
        args = build_parser().parse_args(["scrub", "/tmp/store"])
        assert args.dir == "/tmp/store"
        assert not args.no_repair
        assert not args.strict
        assert args.json is None

    def test_scrub_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scrub"])

    def test_scrub_clean_store(self, tmp_path, capsys):
        store = self._populated_store(tmp_path)
        assert main(["scrub", str(store.root), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "segments verified" in out
        assert "RECORDS LOST" in out

    def test_scrub_repairs_damaged_segment(self, tmp_path, capsys):
        import json

        store = self._populated_store(tmp_path)
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-4] ^= 0x08
        victim.write_bytes(bytes(blob))
        report_path = tmp_path / "scrub.json"
        code = main(["scrub", str(store.root), "--strict",
                     "--json", str(report_path)])
        assert code == 0  # WAL recovery: nothing lost
        report = json.loads(report_path.read_text())
        assert len(report["quarantined"]) == 1
        assert report["lost_keys"] == []
        assert (store.quarantine_dir / victim.name).exists()

    def test_scrub_strict_fails_on_lost_records(self, tmp_path):
        from repro.serve.harness import synthetic_records
        from repro.store import SegmentStore

        # No WAL: a damaged segment's records are unrecoverable.
        store = SegmentStore(tmp_path / "store", seal_records=5,
                             device_bucket=4, time_bucket_s=240.0,
                             wal=False)
        for record in synthetic_records(5, 5, seed=4):
            store.append(record)
        store.flush()
        victim = sorted(store.segments_dir.glob("*.seg"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-4] ^= 0x08
        victim.write_bytes(bytes(blob))
        assert main(["scrub", str(store.root)]) == 0
        # Damage again for the strict run (first run repaired).
        store2 = SegmentStore(tmp_path / "store2", seal_records=5,
                              device_bucket=4, time_bucket_s=240.0,
                              wal=False)
        for record in synthetic_records(5, 5, seed=6):
            store2.append(record)
        store2.flush()
        victim2 = sorted(store2.segments_dir.glob("*.seg"))[0]
        blob2 = bytearray(victim2.read_bytes())
        blob2[-4] ^= 0x08
        victim2.write_bytes(bytes(blob2))
        assert main(["scrub", str(store2.root), "--strict"]) == 1

    def test_serve_accepts_store_flags(self):
        args = build_parser().parse_args([
            "serve", "--store-dir", "/tmp/s", "--seal-records", "64",
            "--disk-chaos", "0.01", "--disk-chaos-seed", "7",
        ])
        assert args.store_dir == "/tmp/s"
        assert args.seal_records == 64
        assert args.disk_chaos == 0.01
        assert args.disk_chaos_seed == 7
