"""Unit tests for the failure-event taxonomy."""

import pytest

from repro.core.events import (
    FailureEvent,
    FailureType,
    FalsePositiveReason,
    HEADLINE_FAILURE_TYPES,
    ProbeVerdict,
)


class TestFailureType:
    def test_headline_types(self):
        assert FailureType.DATA_SETUP_ERROR.is_headline
        assert FailureType.OUT_OF_SERVICE.is_headline
        assert FailureType.DATA_STALL.is_headline

    def test_legacy_types_are_not_headline(self):
        assert not FailureType.SMS_FAILURE.is_headline
        assert not FailureType.VOICE_FAILURE.is_headline

    def test_headline_tuple_has_three_members(self):
        assert len(HEADLINE_FAILURE_TYPES) == 3

    def test_values_are_stable_strings(self):
        # Dataset records persist these values; they must not drift.
        assert FailureType.DATA_STALL.value == "DATA_STALL"
        assert FailureType.DATA_SETUP_ERROR.value == "DATA_SETUP_ERROR"
        assert FailureType.OUT_OF_SERVICE.value == "OUT_OF_SERVICE"


class TestFailureEvent:
    def test_new_event_is_open(self):
        event = FailureEvent(FailureType.DATA_STALL, start_time=10.0)
        assert not event.ended
        assert event.duration is None

    def test_close_sets_duration(self):
        event = FailureEvent(FailureType.DATA_STALL, start_time=10.0)
        event.close(25.0)
        assert event.ended
        assert event.duration == 15.0

    def test_close_before_start_rejected(self):
        event = FailureEvent(FailureType.DATA_STALL, start_time=10.0)
        with pytest.raises(ValueError):
            event.close(9.0)

    def test_true_failure_by_default(self):
        event = FailureEvent(FailureType.OUT_OF_SERVICE, start_time=0.0)
        assert event.is_true_failure

    def test_false_positive_flag(self):
        event = FailureEvent(FailureType.DATA_SETUP_ERROR, start_time=0.0)
        event.false_positive = FalsePositiveReason.BS_OVERLOAD_REJECTION
        assert not event.is_true_failure

    def test_context_defaults_to_empty_dict(self):
        a = FailureEvent(FailureType.DATA_STALL, start_time=0.0)
        b = FailureEvent(FailureType.DATA_STALL, start_time=0.0)
        a.context["x"] = 1
        assert b.context == {}


class TestEnumCompleteness:
    def test_false_positive_reasons_cover_the_paper(self):
        names = {reason.name for reason in FalsePositiveReason}
        # Sec. 2.2 lists these filter categories explicitly.
        assert {"INCOMING_VOICE_CALL", "INSUFFICIENT_BALANCE",
                "MANUAL_DISCONNECT", "BS_OVERLOAD_REJECTION",
                "SYSTEM_SIDE", "DNS_SERVICE_UNAVAILABLE"} <= names

    def test_probe_verdicts_cover_the_paper(self):
        names = {verdict.name for verdict in ProbeVerdict}
        assert {"RECOVERED", "SYSTEM_SIDE_FAULT", "DNS_SERVICE_FAULT",
                "NETWORK_SIDE_STALL"} == names
