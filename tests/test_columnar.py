"""Tests for the columnar view and streaming analysis partials.

Two load-bearing guarantees:

* the columnar view is a faithful, cached projection of the record
  lists — same values, rebuilt exactly when the records change, never
  pickled along with the dataset;
* ``AnalysisPartial`` merges are exact, so the sharded run's
  ``metadata["analysis"]`` block is byte-identical to the serial one.
"""

import json
import pickle

import numpy as np
import pytest

from repro.analysis.columnar import (
    RESOLVED_BY_NONE,
    AnalysisMergeError,
    AnalysisPartial,
    analysis_summary,
    columnar,
    compute_analysis_block,
    invalidate_columnar,
    merge_analysis_blocks,
)
from repro.analysis.stats import compute_general_stats
from repro.dataset.records import (
    DeviceRecord,
    FailureRecord,
    TransitionRecord,
)
from repro.dataset.store import Dataset
from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel import run_sharded


def device(device_id=1, **kwargs) -> DeviceRecord:
    defaults = dict(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A",
        exposure_s={("4G", 3): 1_000.0, ("4G", 4): 2_000.0},
    )
    defaults.update(kwargs)
    return DeviceRecord(**defaults)


def failure(device_id=1, **kwargs) -> FailureRecord:
    defaults = dict(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A", failure_type="DATA_STALL",
        start_time=100.0, duration_s=30.0, bs_id=7, rat="4G",
        signal_level=3, deployment="URBAN",
    )
    defaults.update(kwargs)
    return FailureRecord(**defaults)


def transition(device_id=1, **kwargs) -> TransitionRecord:
    defaults = dict(
        device_id=device_id, from_rat="4G", from_level=3, to_rat="5G",
        to_level=1, executed=True, failed_after=False,
    )
    defaults.update(kwargs)
    return TransitionRecord(**defaults)


def small_dataset() -> Dataset:
    return Dataset(
        devices=[device(1), device(2, isp="ISP-B"), device(3)],
        failures=[
            failure(1, duration_s=10.0, resolved_by=1),
            failure(1, failure_type="OUT_OF_SERVICE", duration_s=40.0,
                    isp="ISP-A", signal_level=1),
            failure(2, isp="ISP-B", rat="5G", duration_s=5.5,
                    resolved_by=None),
        ],
        transitions=[
            transition(1, executed=True, failed_after=True),
            transition(2, executed=False, failed_after=False),
        ],
        metadata={"seed": 1},
    )


class TestColumnarView:
    def test_failure_columns_match_records(self):
        dataset = small_dataset()
        f = columnar(dataset).failures
        assert f.device_id.tolist() == [1, 1, 2]
        assert f.duration_s.tolist() == [10.0, 40.0, 5.5]
        decoded = [f.failure_types[c] for c in f.failure_type_codes]
        assert decoded == ["DATA_STALL", "OUT_OF_SERVICE", "DATA_STALL"]
        decoded_isps = [f.isps[c] for c in f.isp_codes]
        assert decoded_isps == ["ISP-A", "ISP-A", "ISP-B"]

    def test_resolved_by_none_uses_sentinel(self):
        f = columnar(small_dataset()).failures
        assert f.resolved_by[0] == 1
        assert f.resolved_by[2] == RESOLVED_BY_NONE

    def test_type_mask(self):
        f = columnar(small_dataset()).failures
        assert f.type_mask("OUT_OF_SERVICE").tolist() == [False, True,
                                                          False]
        assert f.type_mask("NO_SUCH_TYPE").tolist() == [False] * 3

    def test_device_exposure_flattened(self):
        d = columnar(small_dataset()).devices
        assert len(d.exp_seconds) == 6  # 3 devices x 2 exposure rows
        assert float(d.exp_seconds.sum()) == 9_000.0

    def test_transition_columns(self):
        t = columnar(small_dataset()).transitions
        assert t.executed.tolist() == [True, False]
        assert t.failed_after.tolist() == [True, False]

    def test_view_is_cached(self):
        dataset = small_dataset()
        assert columnar(dataset) is columnar(dataset)

    def test_append_invalidates(self):
        dataset = small_dataset()
        before = columnar(dataset)
        dataset.failures.append(failure(3))
        after = columnar(dataset)
        assert after is not before
        assert len(after.failures) == 4

    def test_explicit_invalidation(self):
        dataset = small_dataset()
        before = columnar(dataset)
        invalidate_columnar(dataset)
        assert columnar(dataset) is not before

    def test_pickle_strips_cache(self):
        dataset = small_dataset()
        columnar(dataset)
        restored = pickle.loads(pickle.dumps(dataset))
        assert "_columnar" not in restored.__dict__
        assert restored.failures == dataset.failures

    def test_empty_dataset_builds(self):
        view = columnar(Dataset())
        assert len(view.failures) == 0
        assert len(view.devices) == 0
        assert len(view.transitions) == 0


class TestAnalysisPartial:
    def test_counts_match_records(self):
        dataset = small_dataset()
        block = compute_analysis_block(dataset)
        assert block["n_devices"] == 3
        assert block["n_failures"] == 3
        assert block["n_transitions"] == 2
        assert block["failing_devices"] == 2
        assert block["oos_devices"] == 1
        assert block["transitions_executed"] == 1
        assert block["transitions_failed_after"] == 1
        assert block["max_failures_single_device"] == 2
        assert block["failures_by_type"] == {"DATA_STALL": 2,
                                             "OUT_OF_SERVICE": 1}
        assert block["failures_by_isp"] == {"ISP-A": 2, "ISP-B": 1}
        assert block["failures_per_device"] == {"1": 1, "2": 1}
        assert block["duration_hist"]["count"] == 3
        assert block["duration_hist"]["sum_scaled"] == 55_500_000

    def test_merge_commutes(self):
        a = AnalysisPartial.from_dataset(small_dataset())
        other = small_dataset()
        other.failures.append(failure(3, duration_s=120.0))
        b = AnalysisPartial.from_dataset(other)
        assert a.merge(b).to_block() == b.merge(a).to_block()

    def test_merge_associates(self):
        partials = []
        for seed in range(3):
            dataset = small_dataset()
            dataset.failures.append(
                failure(3, duration_s=10.0 * (seed + 1))
            )
            partials.append(AnalysisPartial.from_dataset(dataset))
        a, b, c = partials
        assert (a.merge(b).merge(c).to_block()
                == a.merge(b.merge(c)).to_block())

    def test_merge_with_empty_is_identity_on_counts(self):
        a = AnalysisPartial.from_dataset(small_dataset())
        merged = a.merge(AnalysisPartial.from_dataset(Dataset()))
        assert merged.to_block() == a.to_block()

    def test_merge_blocks_round_trips(self):
        block = compute_analysis_block(small_dataset())
        assert merge_analysis_blocks([block]) == block

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_analysis_blocks([])

    def test_incompatible_hist_bounds_rejected(self):
        a = AnalysisPartial.from_dataset(small_dataset())
        b = AnalysisPartial.from_dataset(small_dataset())
        b.duration_hist["bounds"] = [1.0, 2.0]
        with pytest.raises(AnalysisMergeError):
            a.merge(b)

    def test_summary_matches_general_stats(self, vanilla_dataset):
        block = (vanilla_dataset.metadata.get("analysis")
                 or compute_analysis_block(vanilla_dataset))
        summary = analysis_summary(block)
        general = compute_general_stats(vanilla_dataset)
        assert summary["prevalence"] == general.prevalence
        assert summary["frequency"] == general.frequency
        assert (summary["max_failures_single_device"]
                == general.max_failures_single_device)
        assert (summary["fraction_devices_without_oos"]
                == general.fraction_devices_without_oos)
        # Durations go through scaled-integer sums: exact to 1 us.
        assert summary["mean_duration_s"] == pytest.approx(
            general.mean_duration_s, abs=1e-6
        )
        assert summary["count_share_by_type"] == pytest.approx(
            general.count_share_by_type
        )


class TestShardedIdentity:
    def test_sharded_analysis_block_is_byte_identical(self):
        config = ScenarioConfig(
            n_devices=60, seed=11,
            topology=TopologyConfig(n_base_stations=120, seed=12),
        )
        serial = FleetSimulator(config).run()
        sharded = run_sharded(config, workers=2, n_shards=5,
                              mode="inline")
        assert (json.dumps(serial.metadata["analysis"], sort_keys=True)
                == json.dumps(sharded.metadata["analysis"],
                              sort_keys=True))

    def test_serial_run_attaches_analysis(self, vanilla_dataset):
        block = vanilla_dataset.metadata.get("analysis")
        assert block is not None
        assert block["n_devices"] == vanilla_dataset.n_devices
        assert block["n_failures"] == vanilla_dataset.n_failures


class TestPortedEquivalence:
    """The ported stat functions agree with a record-walking oracle."""

    def test_failures_per_phone(self, vanilla_dataset):
        from repro.analysis.stats import failures_per_phone

        counts = {d.device_id: 0 for d in vanilla_dataset.devices}
        for f in vanilla_dataset.failures:
            counts[f.device_id] += 1
        expected = sorted(counts.values())
        assert failures_per_phone(vanilla_dataset).tolist() == expected

    def test_prevalence_by_level(self, vanilla_dataset):
        from repro.analysis.isp_bs import prevalence_by_level

        failing = {level: set() for level in range(6)}
        for f in vanilla_dataset.failures:
            failing[f.signal_level].add(f.device_id)
        n = vanilla_dataset.n_devices
        expected = {level: len(ids) / n
                    for level, ids in failing.items()}
        assert prevalence_by_level(vanilla_dataset) == expected

    def test_stall_autofix_durations(self, vanilla_dataset):
        from repro.analysis.stats import stall_autofix_durations
        from repro.android.recovery import AUTO_RECOVERED

        expected = sorted(
            f.duration_s for f in vanilla_dataset.failures
            if f.failure_type == "DATA_STALL"
            and f.resolved_by == AUTO_RECOVERED
        )
        got = stall_autofix_durations(vanilla_dataset)
        assert got.tolist() == expected
