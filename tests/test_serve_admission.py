"""Tests for the bounded admission queue and its overload policies."""

import json
import zlib

import pytest

from repro.dataset.records import record_identity
from repro.serve.admission import AdmissionQueue


def record_payload(device_id: int, start: float = 1.0) -> bytes:
    """A realistic compressed-record payload (identity-recoverable)."""
    data = {
        "device_id": device_id, "failure_type": "DATA_STALL",
        "start_time": start, "duration_s": 5.0,
    }
    return zlib.compress(
        json.dumps(data, sort_keys=True, default=str).encode()
    )


def record_key(device_id: int, start: float = 1.0) -> str:
    return record_identity({
        "device_id": device_id, "failure_type": "DATA_STALL",
        "start_time": start, "duration_s": 5.0,
    })


class TestAdmission:
    def test_admits_below_capacity(self):
        queue = AdmissionQueue(capacity=3)
        for index in range(3):
            decision = queue.offer(b"p%d" % index, sender=index)
            assert decision.admitted
            assert not decision.shed
        assert queue.depth == 3
        assert queue.admitted == 3
        assert queue.depth_high_watermark == 3

    def test_pop_is_fifo(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer(b"a")
        queue.offer(b"b")
        assert queue.pop(timeout=0.1).payload == b"a"
        assert queue.pop(timeout=0.1).payload == b"b"

    def test_pop_times_out_empty(self):
        assert AdmissionQueue().pop(timeout=0.01) is None

    def test_requeue_front_is_bound_exempt(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer(b"owned")
        entry = queue.pop(timeout=0.1)
        queue.offer(b"new")  # fills the single slot again
        queue.requeue_front(entry)
        assert queue.depth == 2
        assert queue.pop(timeout=0.1).payload == b"owned"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(policy="drop-everything")
        with pytest.raises(ValueError):
            AdmissionQueue(retry_after_s=0.0)


class TestRejectNewest:
    def test_full_queue_rejects_with_retry_after(self):
        queue = AdmissionQueue(capacity=2, policy="reject-newest",
                               retry_after_s=3.0)
        queue.offer(b"a")
        queue.offer(b"b")
        decision = queue.offer(b"c")
        assert not decision.admitted
        assert decision.retry_after_s >= 3.0
        assert queue.rejected == 1
        assert queue.depth == 2  # nothing already acked was touched

    def test_retry_after_escalates_under_sustained_pressure(self):
        queue = AdmissionQueue(capacity=2, policy="reject-newest",
                               retry_after_s=2.0)
        queue.offer(b"a")
        queue.offer(b"b")
        first = queue.offer(b"x").retry_after_s
        for _ in range(20):
            last = queue.offer(b"x").retry_after_s
        assert last > first
        assert last <= 2.0 * 4.0  # capped at 4x the base

    def test_pressure_resets_once_below_capacity(self):
        queue = AdmissionQueue(capacity=2, policy="reject-newest",
                               retry_after_s=2.0)
        queue.offer(b"a")
        queue.offer(b"b")
        for _ in range(10):
            queue.offer(b"x")
        queue.pop(timeout=0.1)
        queue.offer(b"c")  # below capacity again: pressure resets
        queue.pop(timeout=0.1)
        queue.offer(b"d")
        relaxed = queue.offer(b"x").retry_after_s
        assert relaxed == pytest.approx(2.0 * (1.0 + 1 / 2))


class TestShedOldest:
    def test_evicts_oldest_and_accounts_identity(self):
        queue = AdmissionQueue(capacity=2, policy="shed-oldest")
        queue.offer(record_payload(1), sender=1)
        queue.offer(record_payload(2), sender=2)
        decision = queue.offer(record_payload(3), sender=3)
        assert decision.admitted
        assert len(decision.shed) == 1
        assert decision.shed[0].payload == record_payload(1)
        assert queue.shed == 1
        assert queue.shed_bytes == len(record_payload(1))
        assert queue.shed_keys == [record_key(1)]
        # The queue now holds the two newest payloads.
        assert queue.pop(timeout=0.1).payload == record_payload(2)
        assert queue.pop(timeout=0.1).payload == record_payload(3)

    def test_undecodable_shed_payload_sheds_without_key(self):
        queue = AdmissionQueue(capacity=1, policy="shed-oldest")
        queue.offer(b"junk-not-a-record")
        queue.offer(record_payload(2))
        assert queue.shed == 1
        assert queue.shed_keys == []


class TestFairShare:
    def test_hog_is_rejected_not_light_senders(self):
        queue = AdmissionQueue(capacity=3, policy="fair-share",
                               retry_after_s=1.0)
        queue.offer(record_payload(7, 1.0), sender=7)
        queue.offer(record_payload(7, 2.0), sender=7)
        queue.offer(record_payload(8, 1.0), sender=8)
        # Sender 7 holds 2/3 of the queue: its next offer is rejected.
        decision = queue.offer(record_payload(7, 3.0), sender=7)
        assert not decision.admitted
        assert queue.rejected == 1

    def test_light_sender_sheds_from_the_hog(self):
        queue = AdmissionQueue(capacity=3, policy="fair-share")
        queue.offer(record_payload(7, 1.0), sender=7)
        queue.offer(record_payload(7, 2.0), sender=7)
        queue.offer(record_payload(8, 1.0), sender=8)
        decision = queue.offer(record_payload(9, 1.0), sender=9)
        assert decision.admitted
        # The hog's *oldest* payload was evicted.
        assert queue.shed_keys == [record_key(7, 1.0)]
        senders = [queue.pop(timeout=0.1).sender for _ in range(3)]
        assert senders == [7, 8, 9]

    def test_tied_shares_reject_the_newcomer(self):
        queue = AdmissionQueue(capacity=2, policy="fair-share")
        queue.offer(record_payload(1), sender=1)
        queue.offer(record_payload(2), sender=2)
        # Tie at one each; deterministic tie-break picks the smallest
        # sender id as the hog — sender 1 offering again is the hog.
        decision = queue.offer(record_payload(1, 9.0), sender=1)
        assert not decision.admitted


class TestDrainRestore:
    def test_drain_all_empties_and_returns_everything(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer(b"a", sender=1)
        queue.offer(b"b", sender=2)
        entries = queue.drain_all()
        assert [e.payload for e in entries] == [b"a", b"b"]
        assert queue.depth == 0

    def test_restore_is_bound_exempt(self):
        queue = AdmissionQueue(capacity=1)
        queue.restore([(b"a", 1), (b"b", 2), (b"c", 3)])
        assert queue.depth == 3
        assert queue.pop(timeout=0.1).payload == b"a"

    def test_payload_keys_reports_queued_identities(self):
        queue = AdmissionQueue(capacity=4)
        queue.offer(record_payload(1), sender=1)
        queue.offer(b"junk")
        assert queue.payload_keys() == {record_key(1)}
