"""Unit tests for RAT definitions."""

import pytest

from repro.radio.rat import ALL_RATS, Generation, RAT


class TestRat:
    def test_four_generations(self):
        assert len(ALL_RATS) == 4

    def test_generation_mapping(self):
        assert RAT.GSM.generation is Generation.G2
        assert RAT.UMTS.generation is Generation.G3
        assert RAT.LTE.generation is Generation.G4
        assert RAT.NR.generation is Generation.G5

    def test_labels(self):
        assert [rat.label for rat in ALL_RATS] == ["2G", "3G", "4G", "5G"]

    def test_generations_compare(self):
        assert RAT.NR.generation > RAT.LTE.generation

    def test_from_generation_roundtrip(self):
        for rat in ALL_RATS:
            assert RAT.from_generation(rat.generation) is rat

    def test_from_label_roundtrip(self):
        for rat in ALL_RATS:
            assert RAT.from_label(rat.label) is rat

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError):
            RAT.from_label("6G")

    def test_all_rats_ordered_by_generation(self):
        generations = [rat.generation for rat in ALL_RATS]
        assert generations == sorted(generations)
