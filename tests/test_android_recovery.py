"""Unit tests for the three-stage progressive recovery mechanism."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.recovery import (
    AUTO_RECOVERED,
    RecoveryPolicy,
    StageParameters,
    TIMP_RECOVERY_POLICY,
    UNRESOLVED,
    USER_RESET,
    VANILLA_RECOVERY_POLICY,
    resolve_stall,
)


class TestPolicyValidation:
    def test_vanilla_policy_matches_the_paper(self):
        assert VANILLA_RECOVERY_POLICY.probations_s == (60.0, 60.0, 60.0)

    def test_timp_policy_matches_the_paper(self):
        assert TIMP_RECOVERY_POLICY.probations_s == (21.0, 6.0, 16.0)

    def test_stage_overheads_progressive(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(
                probations_s=(60.0, 60.0, 60.0),
                stages=(
                    StageParameters(10.0, 0.5),
                    StageParameters(5.0, 0.5),
                    StageParameters(20.0, 0.5),
                ),
            )

    def test_negative_probation_rejected(self):
        with pytest.raises(ValueError):
            VANILLA_RECOVERY_POLICY.with_probations((-1.0, 60.0, 60.0))

    def test_bad_success_rate_rejected(self):
        with pytest.raises(ValueError):
            StageParameters(overhead_s=1.0, success_rate=1.5)

    def test_with_probations_preserves_stages(self):
        custom = VANILLA_RECOVERY_POLICY.with_probations((1.0, 2.0, 3.0))
        assert custom.stages == VANILLA_RECOVERY_POLICY.stages
        assert custom.probations_s == (1.0, 2.0, 3.0)


class TestResolveStall:
    def test_fast_natural_fix_is_auto_recovered(self):
        resolution = resolve_stall(
            VANILLA_RECOVERY_POLICY, natural_fix_s=5.0,
            rng=random.Random(0),
        )
        assert resolution.resolved_by == AUTO_RECOVERED
        assert resolution.duration_s == 5.0
        assert resolution.stages_executed == 0

    def test_long_stall_triggers_stage_one_at_probation(self):
        always_fix = RecoveryPolicy(
            probations_s=(60.0, 60.0, 60.0),
            stages=(
                StageParameters(2.0, 1.0),
                StageParameters(6.0, 1.0),
                StageParameters(15.0, 1.0),
            ),
        )
        resolution = resolve_stall(always_fix, natural_fix_s=10_000.0,
                                   rng=random.Random(0))
        assert resolution.resolved_by == 1
        assert resolution.duration_s == 62.0
        assert resolution.stages_executed == 1

    def test_stage_failures_escalate(self):
        never_fix_early = RecoveryPolicy(
            probations_s=(10.0, 10.0, 10.0),
            stages=(
                StageParameters(2.0, 0.0),
                StageParameters(6.0, 0.0),
                StageParameters(15.0, 1.0),
            ),
        )
        resolution = resolve_stall(never_fix_early, natural_fix_s=10_000.0,
                                   rng=random.Random(0))
        assert resolution.resolved_by == 3
        # 10 + 2 + 10 + 6 + 10 + 15
        assert resolution.duration_s == 53.0
        assert resolution.stages_executed == 3

    def test_unfixable_stall_rides_to_natural_end(self):
        hopeless = RecoveryPolicy(
            probations_s=(10.0, 10.0, 10.0),
            stages=(
                StageParameters(2.0, 0.0),
                StageParameters(6.0, 0.0),
                StageParameters(15.0, 0.0),
            ),
        )
        resolution = resolve_stall(hopeless, natural_fix_s=500.0,
                                   rng=random.Random(0))
        assert resolution.resolved_by == UNRESOLVED
        assert resolution.duration_s == 500.0

    def test_natural_fix_during_probation_of_later_stage(self):
        never_fix = RecoveryPolicy(
            probations_s=(10.0, 60.0, 60.0),
            stages=(
                StageParameters(2.0, 0.0),
                StageParameters(6.0, 0.0),
                StageParameters(15.0, 0.0),
            ),
        )
        resolution = resolve_stall(never_fix, natural_fix_s=30.0,
                                   rng=random.Random(0))
        assert resolution.resolved_by == AUTO_RECOVERED
        assert resolution.duration_s == 30.0
        assert resolution.stages_executed == 1

    def test_user_reset_ends_the_stall(self):
        resolution = resolve_stall(
            VANILLA_RECOVERY_POLICY, natural_fix_s=10_000.0,
            rng=random.Random(0), user_reset_s=30.0,
            user_reset_success_rate=1.0,
        )
        assert resolution.resolved_by == USER_RESET
        assert resolution.duration_s == 30.0

    def test_failed_user_reset_is_not_retried(self):
        resolution = resolve_stall(
            RecoveryPolicy(
                probations_s=(60.0, 60.0, 60.0),
                stages=(
                    StageParameters(2.0, 1.0),
                    StageParameters(6.0, 1.0),
                    StageParameters(15.0, 1.0),
                ),
            ),
            natural_fix_s=10_000.0,
            rng=random.Random(0),
            user_reset_s=30.0,
            user_reset_success_rate=0.0,
        )
        assert resolution.resolved_by == 1  # stage 1 at 62 s

    def test_cycles_retry_after_full_failure(self):
        flaky = RecoveryPolicy(
            probations_s=(10.0, 10.0, 10.0),
            stages=(
                StageParameters(2.0, 0.5),
                StageParameters(6.0, 0.5),
                StageParameters(15.0, 0.5),
            ),
        )
        # With 50% stages, some seeds need a second cycle.
        cycles_used = set()
        for seed in range(50):
            resolution = resolve_stall(flaky, natural_fix_s=100_000.0,
                                       rng=random.Random(seed))
            cycles_used.add(resolution.stages_executed)
        assert max(cycles_used) > 3  # at least one run entered cycle 2

    def test_negative_natural_rejected(self):
        with pytest.raises(ValueError):
            resolve_stall(VANILLA_RECOVERY_POLICY, -1.0, random.Random(0))

    def test_timeline_is_chronological(self):
        resolution = resolve_stall(
            VANILLA_RECOVERY_POLICY, natural_fix_s=400.0,
            rng=random.Random(3), user_reset_s=25.0,
        )
        times = [t for t, _ in resolution.timeline]
        assert times == sorted(times)


class TestTimpVsVanillaContrast:
    def test_timp_is_never_slower_on_recoverable_stalls(self):
        """For stage-fixable stalls, shorter probations fix sooner."""
        rng_pairs = [(random.Random(s), random.Random(s))
                     for s in range(30)]
        for rng_v, rng_t in rng_pairs:
            natural = 10_000.0
            vanilla = resolve_stall(VANILLA_RECOVERY_POLICY, natural, rng_v)
            timp = resolve_stall(TIMP_RECOVERY_POLICY, natural, rng_t)
            assert timp.duration_s <= vanilla.duration_s

    def test_short_stalls_are_identical(self):
        """Stalls that auto-fix before the first probation see no
        difference between triggers."""
        for natural in (1.0, 5.0, 20.0):
            vanilla = resolve_stall(VANILLA_RECOVERY_POLICY, natural,
                                    random.Random(0))
            timp = resolve_stall(TIMP_RECOVERY_POLICY, natural,
                                 random.Random(0))
            assert vanilla.duration_s == timp.duration_s == natural


class TestResolveStallProperties:
    @settings(max_examples=200)
    @given(
        natural=st.floats(min_value=0.0, max_value=100_000.0),
        seed=st.integers(min_value=0, max_value=10_000),
        probations=st.tuples(
            st.floats(min_value=0.0, max_value=120.0),
            st.floats(min_value=0.0, max_value=120.0),
            st.floats(min_value=0.0, max_value=120.0),
        ),
    )
    def test_duration_is_bounded_and_consistent(self, natural, seed,
                                                probations):
        policy = VANILLA_RECOVERY_POLICY.with_probations(probations)
        resolution = resolve_stall(policy, natural, random.Random(seed))
        assert resolution.duration_s >= 0.0
        if resolution.resolved_by in (AUTO_RECOVERED, UNRESOLVED):
            assert resolution.duration_s <= natural
        assert 0 <= resolution.stages_executed
