"""Unit tests for the workload/context generators."""

import math
import random
from collections import Counter

import pytest

from repro.core.events import FailureType
from repro.core.signal import SignalLevel
from repro.fleet import behavior
from repro.netstack.faults import FaultKind
from repro.network.basestation import DeploymentClass
from repro.network.isp import ISP
from repro.radio.rat import RAT


class TestDistributionsAreNormalized:
    def test_exposure_shares_sum_to_one(self):
        assert abs(sum(behavior.EXPOSURE_LEVEL_SHARES) - 1.0) < 1e-9

    def test_rat_usage_mixes_sum_to_one(self):
        assert abs(sum(behavior.RAT_USAGE_NON_5G.values()) - 1.0) < 1e-9
        assert abs(sum(behavior.RAT_USAGE_5G.values()) - 1.0) < 1e-9

    def test_stall_mixture_sums_to_one(self):
        total = sum(c.weight for c in behavior.STALL_MIXTURE)
        assert abs(total - 1.0) < 1e-9

    def test_isp_factor_mean_is_one(self):
        from repro.network.isp import ISP_PROFILES

        mean = sum(
            behavior.ISP_HAZARD_FACTOR[isp] * p.subscriber_share
            for isp, p in ISP_PROFILES.items()
        )
        assert abs(mean - 1.0) < 0.02


class TestLevelHazardShape:
    def test_monotone_then_uptick(self):
        """Fig. 15's generative ground truth: decreasing 0..4, uptick
        at 5 above levels 1-4 but below level 0."""
        h = behavior.LEVEL_HAZARD
        assert list(h[:5]) == sorted(h[:5], reverse=True)
        assert h[5] > max(h[1:5])
        assert h[5] < h[0]

    def test_rat_factors_encode_the_findings(self):
        assert behavior.RAT_HAZARD_FACTOR[RAT.NR] > 1.0  # 5G immature
        assert behavior.RAT_HAZARD_FACTOR[RAT.UMTS] < 1.0  # 3G idle


class TestStallMixtureAnchors:
    def sample(self, n=30_000):
        rng = random.Random(5)
        return [behavior.sample_stall_natural_duration(rng)[0]
                for _ in range(n)]

    def test_60_percent_within_10s(self):
        durations = self.sample()
        fraction = sum(1 for d in durations if d <= 10.0) / len(durations)
        assert 0.50 <= fraction <= 0.68

    def test_over_80_percent_under_300s(self):
        durations = self.sample()
        fraction = sum(1 for d in durations if d < 300.0) / len(durations)
        assert fraction > 0.80

    def test_under_10_percent_over_1200s(self):
        durations = self.sample()
        fraction = sum(1 for d in durations if d > 1200.0) / len(durations)
        assert fraction < 0.10

    def test_durations_are_capped(self):
        assert max(self.sample()) <= behavior.MAX_STALL_DURATION_S

    def test_isolated_component_is_unrecoverable(self):
        isolated = [c for c in behavior.STALL_MIXTURE
                    if c.device_recoverable == 0.0]
        assert len(isolated) == 1
        assert isolated[0].weight < 0.05


class TestSamplers:
    def test_failure_type_mix_matches_sec31(self):
        """Per-device means 16/14/3 out of 33 (Sec. 3.1)."""
        rng = random.Random(1)
        counts = Counter(
            behavior.sample_failure_type(rng, oos_active=True)
            for _ in range(30_000)
        )
        total = sum(counts.values())
        assert abs(counts[FailureType.DATA_SETUP_ERROR] / total
                   - 16 / 48.33) < 0.03
        legacy = (counts[FailureType.SMS_FAILURE]
                  + counts[FailureType.VOICE_FAILURE])
        assert legacy / total < 0.02

    def test_inactive_devices_never_draw_oos(self):
        rng = random.Random(2)
        for _ in range(2_000):
            failure_type = behavior.sample_failure_type(
                rng, oos_active=False
            )
            assert failure_type is not FailureType.OUT_OF_SERVICE

    def test_event_rat_respects_capability(self):
        rng = random.Random(3)
        non5g = {behavior.sample_event_rat(rng, has_5g=False)
                 for _ in range(2_000)}
        assert RAT.NR not in non5g
        with5g = {behavior.sample_event_rat(rng, has_5g=True)
                  for _ in range(2_000)}
        assert RAT.NR in with5g

    def test_level5_failures_come_from_hubs(self):
        """Sec. 3.3: the level-5 anomaly is hub-driven."""
        rng = random.Random(4)
        deployments = Counter(
            behavior.sample_event_deployment(rng, SignalLevel.LEVEL_5)
            for _ in range(2_000)
        )
        hub_share = deployments[DeploymentClass.TRANSPORT_HUB] / 2_000
        assert hub_share > 0.6

    def test_mid_level_failures_follow_time_mix(self):
        rng = random.Random(5)
        deployments = Counter(
            behavior.sample_event_deployment(rng, SignalLevel.LEVEL_3)
            for _ in range(2_000)
        )
        assert (deployments[DeploymentClass.URBAN]
                > deployments[DeploymentClass.TRANSPORT_HUB])

    def test_fault_kind_mix_is_mostly_true_stalls(self):
        rng = random.Random(6)
        kinds = Counter(
            behavior.sample_stall_fault_kind(rng) for _ in range(10_000)
        )
        assert kinds[FaultKind.NETWORK_STALL] / 10_000 > 0.88

    def test_event_context_long_outage_prefers_remote(self, topology):
        rng = random.Random(7)
        remote = sum(
            behavior.sample_event_context(
                rng, topology, ISP.A, has_5g=False, long_outage=True
            ).deployment is DeploymentClass.REMOTE
            for _ in range(500)
        )
        assert remote > 200


class TestTransitionGenerators:
    def test_5g_scenarios_are_mostly_canonical(self):
        """Sec. 3.2's canonical situation: healthy 4G with weak 5G."""
        rng = random.Random(8)
        canonical = 0
        for _ in range(2_000):
            scenario = behavior.sample_transition_scenario(rng, True)
            rats = {rat for rat, _ in scenario.candidates}
            if scenario.current_rat is RAT.LTE and RAT.NR in rats:
                canonical += 1
        assert canonical > 1_200

    def test_non_5g_scenarios_have_no_nr(self):
        rng = random.Random(9)
        for _ in range(500):
            scenario = behavior.sample_transition_scenario(rng, False)
            assert all(rat is not RAT.NR
                       for rat, _ in scenario.candidates)

    def test_transition_failure_probability_anchors_fig17f(self):
        p_bad = behavior.transition_failure_probability(
            RAT.LTE, SignalLevel.LEVEL_4, RAT.NR, SignalLevel.LEVEL_0
        )
        p_good = behavior.transition_failure_probability(
            RAT.LTE, SignalLevel.LEVEL_2, RAT.NR, SignalLevel.LEVEL_4
        )
        assert p_bad > 0.4
        assert p_good == pytest.approx(
            behavior.TRANSITION_BASE_FAILURE_P
        )

    def test_stay_probability_is_the_floor(self):
        assert behavior.stay_failure_probability(
            RAT.LTE, SignalLevel.LEVEL_3
        ) == behavior.TRANSITION_BASE_FAILURE_P

    def test_generative_risk_matches_table(self):
        assert behavior.generative_risk(
            RAT.NR, SignalLevel.LEVEL_0
        ) == behavior.GENERATIVE_LEVEL_RISK[RAT.NR][0]


class TestOosDurations:
    def test_lognormal_shape(self):
        rng = random.Random(10)
        durations = [behavior.sample_oos_duration(rng)
                     for _ in range(10_000)]
        median = sorted(durations)[5_000]
        assert math.isclose(median, behavior.OOS_MEDIAN_S, rel_tol=0.15)
        assert max(durations) <= behavior.MAX_STALL_DURATION_S
