"""Unit tests for the DataFailCause registry."""

import pytest

from repro import quantities
from repro.core.errorcodes import (
    DataFailCause,
    ERROR_CODE_REGISTRY,
    ErrorCodeRegistry,
    ProtocolLayer,
)


class TestRegistryContents:
    def test_registry_is_substantial(self):
        # We model the prominent ~75% of Android's 344 causes, across
        # the 3GPP, 3GPP2 (CDMA/HDR/eHRPD), IWLAN, and OEM families.
        assert 250 <= len(ERROR_CODE_REGISTRY) <= quantities.TOTAL_ERROR_CODES

    def test_all_table2_codes_are_registered(self):
        for code in quantities.TABLE2_ERROR_CODE_SHARES:
            assert code in ERROR_CODE_REGISTRY, code

    def test_prose_codes_are_registered(self):
        # Sec. 3.3 names these two for the dense-deployment finding.
        assert "EMM_ACCESS_BARRED" in ERROR_CODE_REGISTRY
        assert "INVALID_EMM_STATE" in ERROR_CODE_REGISTRY

    def test_names_are_unique(self):
        names = ERROR_CODE_REGISTRY.names()
        assert len(names) == len(set(names))

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            ERROR_CODE_REGISTRY.get("NOT_A_REAL_CAUSE")

    def test_iteration_yields_causes(self):
        causes = list(ERROR_CODE_REGISTRY)
        assert all(isinstance(c, DataFailCause) for c in causes)
        assert len(causes) == len(ERROR_CODE_REGISTRY)


class TestLayerAttribution:
    def test_table2_layers_match_the_paper(self):
        """Sec. 3.2: the codes span physical / link / network layers."""
        assert (ERROR_CODE_REGISTRY.get("SIGNAL_LOST").layer
                is ProtocolLayer.PHYSICAL)
        assert (ERROR_CODE_REGISTRY.get("IRAT_HANDOVER_FAILED").layer
                is ProtocolLayer.PHYSICAL)
        assert (ERROR_CODE_REGISTRY.get("PPP_TIMEOUT").layer
                is ProtocolLayer.LINK)
        assert (ERROR_CODE_REGISTRY.get("INVALID_EMM_STATE").layer
                is ProtocolLayer.NETWORK)

    def test_every_layer_is_populated(self):
        for layer in ProtocolLayer:
            assert ERROR_CODE_REGISTRY.by_layer(layer), layer

    def test_by_layer_partitions_the_registry(self):
        total = sum(
            len(ERROR_CODE_REGISTRY.by_layer(layer))
            for layer in ProtocolLayer
        )
        assert total == len(ERROR_CODE_REGISTRY)


class TestRationalRejections:
    def test_overload_codes_are_rational(self):
        rational = ERROR_CODE_REGISTRY.rational_rejections()
        assert "INSUFFICIENT_RESOURCES" in rational
        assert "CONGESTION" in rational

    def test_true_failure_codes_are_not_rational(self):
        rational = ERROR_CODE_REGISTRY.rational_rejections()
        for code in quantities.TABLE2_ERROR_CODE_SHARES:
            assert code not in rational, code


class TestRetryability:
    def test_permanent_cause_is_not_retryable(self):
        assert not ERROR_CODE_REGISTRY.retryable("MISSING_UNKNOWN_APN")

    def test_transient_cause_is_retryable(self):
        assert ERROR_CODE_REGISTRY.retryable("SIGNAL_LOST")


class TestRegistryConstruction:
    def test_duplicate_names_rejected(self):
        cause = DataFailCause("X", 1, ProtocolLayer.OTHER, "x")
        with pytest.raises(ValueError):
            ErrorCodeRegistry((cause, cause))

    def test_custom_registry_lookup(self):
        cause = DataFailCause("X", 1, ProtocolLayer.OTHER, "x")
        registry = ErrorCodeRegistry((cause,))
        assert registry.get("X") is cause
        assert "X" in registry
