"""Tests for the backend: streaming aggregation and upload ingestion."""

import json
import random
import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.ingest import (
    QUARANTINE_CAPACITY,
    IngestionServer,
    ServiceUnavailable,
)
from repro.backend.streaming import P2Quantile, StreamingStats
from repro.monitoring.uploader import UploadBatcher


class TestStreamingStats:
    def test_matches_numpy(self):
        values = np.random.RandomState(0).lognormal(2.0, 1.0, 2_000)
        stats = StreamingStats()
        stats.extend(values)
        assert stats.count == 2_000
        assert stats.mean == pytest.approx(values.mean())
        assert stats.variance == pytest.approx(values.var(), rel=1e-9)
        assert stats.minimum == values.min()
        assert stats.maximum == values.max()
        assert stats.total == pytest.approx(values.sum())

    def test_small_counts(self):
        stats = StreamingStats()
        assert stats.variance == 0.0
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200),
           st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    def test_merge_equals_single_pass(self, left, right):
        a = StreamingStats()
        a.extend(left)
        b = StreamingStats()
        b.extend(right)
        merged = a.merge(b)
        combined = StreamingStats()
        combined.extend(left + right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-6,
                                            abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance,
                                                rel=1e-6, abs=1e-3)

    def test_merge_with_empty(self):
        a = StreamingStats()
        a.extend([1.0, 2.0])
        assert a.merge(StreamingStats()).mean == a.mean
        assert StreamingStats().merge(a).count == 2


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    def test_exact_for_tiny_streams(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.add(value)
        assert sketch.value() == 3.0

    @pytest.mark.parametrize("quantile", [0.1, 0.5, 0.9])
    def test_approximates_numpy_on_lognormal(self, quantile):
        rng = np.random.RandomState(1)
        values = rng.lognormal(1.0, 0.8, 20_000)
        sketch = P2Quantile(quantile)
        for value in values:
            sketch.add(float(value))
        exact = float(np.quantile(values, quantile))
        assert sketch.value() == pytest.approx(exact, rel=0.08)

    def test_approximates_uniform_median(self):
        rng = random.Random(2)
        sketch = P2Quantile(0.5)
        for _ in range(10_000):
            sketch.add(rng.uniform(0.0, 100.0))
        assert sketch.value() == pytest.approx(50.0, abs=3.0)

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                    min_size=1, max_size=500))
    def test_estimate_within_observed_range(self, values):
        sketch = P2Quantile(0.75)
        for value in values:
            sketch.add(value)
        assert min(values) <= sketch.value() <= max(values)


def record_dict(device_id=1, duration=30.0, failure_type="DATA_STALL",
                start=100.0) -> dict:
    return dict(
        device_id=device_id, model=3, android_version="9.0",
        has_5g=False, isp="ISP-A", failure_type=failure_type,
        start_time=start, duration_s=duration, bs_id=7, rat="4G",
        signal_level=3, deployment="URBAN", error_code=None,
        resolved_by=None, stages_executed=0, post_transition=False,
        arm="vanilla",
    )


class TestIngestionServer:
    def compress(self, data: dict) -> bytes:
        return zlib.compress(json.dumps(data, sort_keys=True,
                                        default=str).encode())

    def test_accepts_valid_uploads(self):
        server = IngestionServer()
        server.receive(self.compress(record_dict()))
        assert server.accepted == 1
        assert server.records[0].duration_s == 30.0

    def test_deduplicates_retried_uploads(self):
        server = IngestionServer()
        payload = self.compress(record_dict())
        server.receive(payload)
        server.receive(payload)
        assert server.accepted == 1
        assert server.duplicates == 1

    def test_rejects_garbage(self):
        server = IngestionServer()
        server.receive(b"not compressed at all")
        server.receive(zlib.compress(b"[1, 2, 3"))
        server.receive(self.compress({"nope": 1}))
        assert server.malformed == 3
        assert server.accepted == 0

    def test_streaming_aggregates_match(self):
        server = IngestionServer()
        durations = [10.0, 20.0, 30.0, 40.0]
        for index, duration in enumerate(durations):
            server.receive(self.compress(
                record_dict(device_id=index, duration=duration,
                            start=100.0 + index)
            ))
        stats = server.duration_stats["DATA_STALL"]
        assert stats.count == 4
        assert stats.mean == pytest.approx(25.0)
        assert server.duration_share() == {"DATA_STALL": 1.0}

    def test_duration_share_across_types(self):
        server = IngestionServer()
        server.ingest_record(record_dict(device_id=1, duration=90.0))
        server.ingest_record(record_dict(
            device_id=2, duration=10.0,
            failure_type="DATA_SETUP_ERROR",
        ))
        share = server.duration_share()
        assert share["DATA_STALL"] == pytest.approx(0.9)

    def test_end_to_end_with_upload_batcher(self):
        """Device-side batching feeds the backend transport directly."""
        server = IngestionServer()
        batcher = UploadBatcher(transport=server.receive)
        for index in range(5):
            batcher.enqueue(record_dict(device_id=index,
                                        start=float(index)))
        flushed = batcher.maybe_flush(wifi_available=True)
        assert flushed > 0
        assert server.accepted == 5
        assert server.bytes_received == flushed

    def test_summary_keys(self):
        summary = IngestionServer().summary()
        assert set(summary) == {"accepted", "duplicates", "malformed",
                                "quarantined", "quarantine_evicted",
                                "bytes_received"}

    def test_malformed_record_does_not_poison_dedup(self):
        """A malformed-but-complete record must not enter the dedup
        set: its retry is malformed again, not a 'duplicate', and a
        corrected record with overlapping content is accepted."""
        server = IngestionServer()
        bad = record_dict()
        bad["unexpected_field"] = 1  # complete, but fails to parse
        server.ingest_record(dict(bad))
        server.ingest_record(dict(bad))
        assert server.malformed == 2
        assert server.duplicates == 0
        assert server.accepted == 0
        server.ingest_record(record_dict())  # the corrected retry
        assert server.accepted == 1

    def test_malformed_payloads_are_quarantined(self):
        server = IngestionServer()
        server.receive(b"garbage bytes")
        bad = record_dict()
        bad["unexpected_field"] = 1
        server.ingest_record(bad)
        server.ingest_record({"nope": 1})
        assert server.quarantined == 3
        reasons = {entry["reason"] for entry in server.quarantine}
        assert reasons == {"undecodable", "schema-mismatch",
                           "missing-fields"}

    def test_quarantine_is_bounded(self):
        server = IngestionServer()
        for _ in range(QUARANTINE_CAPACITY + 50):
            server.receive(b"junk")
        assert server.quarantined == QUARANTINE_CAPACITY + 50
        assert len(server.quarantine) == QUARANTINE_CAPACITY

    def test_unavailable_server_refuses_uploads(self):
        server = IngestionServer()
        server.take_down()
        with pytest.raises(ServiceUnavailable):
            server.receive(self.compress(record_dict()))
        assert server.bytes_received == 0
        server.bring_up()
        server.receive(self.compress(record_dict()))
        assert server.accepted == 1

    def test_checkpoint_restore_resumes_without_double_count(self):
        """A crashed server restored from a snapshot absorbs the full
        retry storm: pre-snapshot records dedup, post-snapshot records
        are accepted exactly once."""
        server = IngestionServer()
        early = [record_dict(device_id=i, start=float(i))
                 for i in range(6)]
        late = [record_dict(device_id=i, start=float(i))
                for i in range(6, 10)]
        for data in early:
            server.receive(self.compress(data))
        snapshot = json.loads(json.dumps(server.checkpoint()))
        for data in late:
            server.receive(self.compress(data))
        assert server.accepted == 10

        restored = IngestionServer.restore(snapshot)
        assert restored.accepted == 6
        for data in early + late:  # devices retry everything
            restored.receive(self.compress(data))
        assert restored.accepted == 10
        assert restored.duplicates == 6
        stats = restored.duration_stats["DATA_STALL"]
        assert stats.count == 10
        assert stats.mean == pytest.approx(30.0)
        assert restored.duration_median.count == 10

    def test_checkpoint_restore_round_trip_is_exact(self):
        """Restore is lossless for everything the snapshot carries:
        aggregates, the P² median state, the dedup set, availability,
        and the eviction counter — checked field for field."""
        rng = random.Random(41)
        originals = [
            record_dict(
                device_id=index % 8,
                duration=round(1.0 + rng.random() * 300.0, 3),
                failure_type=("DATA_STALL" if index % 3
                              else "DATA_SETUP_ERROR"),
                start=float(index),
            )
            for index in range(40)
        ]
        server = IngestionServer()
        for data in originals:
            server.receive(self.compress(data))
        server.receive(b"junk")  # some quarantine state too
        server.quarantine_evicted = 3
        server.take_down()       # snapshot mid-outage

        snapshot = json.loads(json.dumps(server.checkpoint()))
        restored = IngestionServer.restore(snapshot)

        assert restored.available is False
        assert restored._seen == server._seen
        assert restored.accepted_keys == server.accepted_keys
        assert restored.summary() == server.summary()
        assert restored.quarantine_evicted == 3
        assert set(restored.duration_stats) == set(server.duration_stats)
        for failure_type, stats in server.duration_stats.items():
            mirror = restored.duration_stats[failure_type]
            assert mirror.to_dict() == stats.to_dict()
        assert (restored.duration_median.to_dict()
                == server.duration_median.to_dict())
        assert restored.duration_median.value() == pytest.approx(
            server.duration_median.value()
        )
        assert ([r.to_dict() for r in restored.records]
                == [r.to_dict() for r in server.records])
        # And the restored server *behaves* identically: still down,
        # and once up, pre-snapshot records dedup instead of recount.
        with pytest.raises(ServiceUnavailable):
            restored.receive(self.compress(originals[0]))
        restored.bring_up()
        restored.receive(self.compress(originals[0]))
        assert restored.duplicates == server.duplicates + 1

    def test_quarantine_eviction_is_counted_and_keeps_newest(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        server = IngestionServer()
        with use_registry(registry):
            for index in range(QUARANTINE_CAPACITY + 7):
                server.receive(b"junk-%d" % index)
        assert server.quarantine_evicted == 7
        assert len(server.quarantine) == QUARANTINE_CAPACITY
        # Oldest evicted, newest retained.
        assert server.quarantine[0]["payload"] == b"junk-7"
        assert (server.quarantine[-1]["payload"]
                == b"junk-%d" % (QUARANTINE_CAPACITY + 6))
        assert registry.snapshot()["counters"][
            "ingest_quarantine_evicted_total"
        ] == 7
        assert server.summary()["quarantine_evicted"] == 7.0
