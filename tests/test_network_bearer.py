"""Unit tests for bearer-cause sampling."""

import random
from collections import Counter

from repro import quantities
from repro.core.errorcodes import ERROR_CODE_REGISTRY
from repro.core.signal import SignalLevel
from repro.network.bearer import CauseSampler, DEFAULT_CAUSE_SAMPLER
from repro.radio.rat import RAT


def sample_many(n=20_000, **context) -> Counter:
    rng = random.Random(9)
    return Counter(
        DEFAULT_CAUSE_SAMPLER.sample(rng, **context) for _ in range(n)
    )


class TestBaseWeights:
    def test_weights_sum_to_one(self):
        total = sum(CauseSampler().base_weights.values())
        assert abs(total - 1.0) < 1e-9

    def test_table2_codes_have_their_published_shares(self):
        weights = CauseSampler().base_weights
        for code, share in quantities.TABLE2_ERROR_CODE_SHARES.items():
            assert weights[code] >= share

    def test_all_weighted_codes_are_registered(self):
        for code in CauseSampler().base_weights:
            assert code in ERROR_CODE_REGISTRY

    def test_no_rational_rejections_in_the_mix(self):
        """Rational rejections are false positives, filtered before the
        decomposition; the sampler must not generate them."""
        rational = ERROR_CODE_REGISTRY.rational_rejections()
        assert not rational & set(CauseSampler().base_weights)


class TestContextFreeSampling:
    def test_top_code_dominates(self):
        counts = sample_many()
        assert counts.most_common(1)[0][0] == "GPRS_REGISTRATION_FAIL"

    def test_top10_cumulative_near_the_paper(self):
        counts = sample_many()
        total = sum(counts.values())
        top10 = sum(c for _, c in counts.most_common(10)) / total
        assert 0.40 <= top10 <= 0.60


class TestContextModulation:
    def test_deep_fade_boosts_signal_codes(self):
        base = sample_many(5_000)
        fade = sample_many(5_000, signal_level=SignalLevel.LEVEL_0)
        assert fade["SIGNAL_LOST"] > base["SIGNAL_LOST"] * 1.5

    def test_dense_deployment_boosts_emm_codes(self):
        """Sec. 3.3: hub failures tag EMM_ACCESS_BARRED and
        INVALID_EMM_STATE."""
        base = sample_many(5_000)
        hub = sample_many(5_000, deployment_density=0.95)
        assert (hub["EMM_ACCESS_BARRED"] + hub["INVALID_EMM_STATE"]
                > (base["EMM_ACCESS_BARRED"]
                   + base["INVALID_EMM_STATE"]) * 1.5)

    def test_legacy_rat_boosts_gprs_codes(self):
        base = sample_many(5_000)
        legacy = sample_many(5_000, rat=RAT.GSM)
        assert (legacy["GPRS_REGISTRATION_FAIL"]
                > base["GPRS_REGISTRATION_FAIL"] * 1.5)

    def test_handover_boosts_irat_codes(self):
        base = sample_many(5_000)
        handover = sample_many(5_000, during_handover=True)
        assert (handover["IRAT_HANDOVER_FAILED"]
                > max(1, base["IRAT_HANDOVER_FAILED"]) * 2)

    def test_sampling_is_deterministic_per_seed(self):
        a = random.Random(5)
        b = random.Random(5)
        assert [DEFAULT_CAUSE_SAMPLER.sample(a) for _ in range(50)] == [
            DEFAULT_CAUSE_SAMPLER.sample(b) for _ in range(50)
        ]
