"""Unit tests for the Android-MOD monitoring service and its filters."""

from repro.android.telephony import TelephonyManager
from repro.core.events import (
    FailureEvent,
    FailureType,
    FalsePositiveReason,
    ProbeVerdict,
)
from repro.monitoring.insitu import InSituCollector
from repro.monitoring.listener import CellularMonitorService, DeviceFlags


def make_service(flags: DeviceFlags | None = None):
    sink: list[FailureEvent] = []
    service = CellularMonitorService(
        insitu=InSituCollector(TelephonyManager()),
        sink=sink.append,
        flags=flags or DeviceFlags(),
    )
    return service, sink


def setup_error(code: str = "SIGNAL_LOST") -> FailureEvent:
    event = FailureEvent(FailureType.DATA_SETUP_ERROR, start_time=1.0,
                         error_code=code)
    event.close(1.0)
    return event


class TestTrueFailureCapture:
    def test_true_failure_reaches_the_sink(self):
        service, sink = make_service()
        service.on_failure_event(setup_error())
        assert len(sink) == 1
        assert service.captured == 1
        assert service.filtered == 0

    def test_in_situ_context_is_attached(self):
        service, sink = make_service()
        service.on_failure_event(setup_error())
        assert "rat" in sink[0].context
        assert "bs_identity" in sink[0].context


class TestFalsePositiveFilters:
    def test_voice_call_filter(self):
        """Sec. 2.2: disruption by an incoming voice call."""
        service, sink = make_service(DeviceFlags(in_voice_call=True))
        event = setup_error()
        service.on_failure_event(event)
        assert not sink
        assert event.false_positive is (
            FalsePositiveReason.INCOMING_VOICE_CALL
        )

    def test_balance_filter(self):
        service, sink = make_service(DeviceFlags(balance_exhausted=True))
        service.on_failure_event(setup_error())
        assert not sink
        assert service.filtered == 1

    def test_manual_disconnect_filter(self):
        service, sink = make_service(
            DeviceFlags(data_manually_disabled=True)
        )
        service.on_failure_event(setup_error())
        assert not sink

    def test_rational_rejection_filter(self):
        """Sec. 2.1 footnote: BS-overload rejections are not failures."""
        service, sink = make_service()
        event = setup_error("INSUFFICIENT_RESOURCES")
        service.on_failure_event(event)
        assert not sink
        assert event.false_positive is (
            FalsePositiveReason.BS_OVERLOAD_REJECTION
        )

    def test_rational_rejection_only_applies_to_setup_errors(self):
        service, sink = make_service()
        event = FailureEvent(FailureType.DATA_STALL, start_time=0.0,
                             error_code="INSUFFICIENT_RESOURCES")
        event.close(10.0)
        service.on_failure_event(event)
        assert len(sink) == 1

    def test_pre_marked_false_positive_is_not_captured(self):
        service, sink = make_service()
        event = setup_error()
        event.false_positive = FalsePositiveReason.SYSTEM_SIDE
        service.on_failure_event(event)
        assert not sink


class TestStallVerdicts:
    def make_stall(self) -> FailureEvent:
        event = FailureEvent(FailureType.DATA_STALL, start_time=0.0)
        event.close(30.0)
        return event

    def test_network_side_stall_is_captured(self):
        service, sink = make_service()
        service.on_stall_verdict(self.make_stall(),
                                 ProbeVerdict.NETWORK_SIDE_STALL)
        assert len(sink) == 1

    def test_system_side_verdict_is_filtered(self):
        service, sink = make_service()
        service.on_stall_verdict(self.make_stall(),
                                 ProbeVerdict.SYSTEM_SIDE_FAULT)
        assert not sink
        assert service.filtered == 1

    def test_dns_verdict_is_filtered(self):
        service, sink = make_service()
        service.on_stall_verdict(self.make_stall(),
                                 ProbeVerdict.DNS_SERVICE_FAULT)
        assert not sink

    def test_recovered_verdict_is_captured_as_true_failure(self):
        """A stall that ended is still a stall that happened."""
        service, sink = make_service()
        service.on_stall_verdict(self.make_stall(),
                                 ProbeVerdict.RECOVERED)
        assert len(sink) == 1


class TestCounters:
    def test_counts_add_up(self):
        service, sink = make_service()
        service.on_failure_event(setup_error())
        service.on_failure_event(setup_error("INSUFFICIENT_RESOURCES"))
        service.on_failure_event(setup_error())
        assert service.captured == 2
        assert service.filtered == 1
        assert len(sink) == 2
