"""Unit tests for the inter-RAT handover procedure."""

import random
from collections import Counter

import pytest

from repro.android.dual_connectivity import ControlPlaneLink, EnDcManager
from repro.android.handover import (
    HandoverManager,
    HandoverResult,
    HandoverStage,
)
from repro.core.signal import SignalLevel
from repro.radio.rat import RAT


class AlwaysAdmit:
    def admit_bearer(self, rat, level, rng):
        return None


class AlwaysReject:
    def __init__(self, cause="INSUFFICIENT_RESOURCES"):
        self.cause = cause

    def admit_bearer(self, rat, level, rng):
        return self.cause


def manager(seed=0, endc=None) -> HandoverManager:
    return HandoverManager(random.Random(seed), endc=endc)


def warm_endc() -> EnDcManager:
    endc = EnDcManager()
    endc.attach_master(ControlPlaneLink(RAT.LTE, bs_id=1))
    endc.attach_slave(ControlPlaneLink(RAT.NR, bs_id=2))
    return endc


class TestHandoverResult:
    def test_success_cannot_carry_a_cause(self):
        with pytest.raises(ValueError):
            HandoverResult(True, HandoverStage.COMPLETE,
                           "IRAT_HANDOVER_FAILED", 1.0)

    def test_failure_needs_a_cause(self):
        with pytest.raises(ValueError):
            HandoverResult(False, HandoverStage.EXECUTION, None, 1.0)


class TestStages:
    def test_healthy_handover_completes(self):
        mgr = manager()
        successes = sum(
            mgr.execute(RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
                        RAT.NR, SignalLevel.LEVEL_4).success
            for _ in range(200)
        )
        assert successes > 190
        assert mgr.failure_rate < 0.05

    def test_preparation_rejection_surfaces_the_cause(self):
        result = manager().execute(
            RAT.LTE, SignalLevel.LEVEL_4,
            AlwaysReject("INVALID_EMM_STATE"),
            RAT.NR, SignalLevel.LEVEL_3,
        )
        assert not result.success
        assert result.stage is HandoverStage.PREPARATION
        assert result.cause == "INVALID_EMM_STATE"

    def test_level0_targets_fail_execution_often(self):
        """Fig. 17's common pattern: level-0 destinations are where
        handovers break."""
        mgr = manager(seed=1)
        stages = Counter(
            mgr.execute(RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
                        RAT.NR, SignalLevel.LEVEL_0).stage
            for _ in range(400)
        )
        assert stages[HandoverStage.EXECUTION] > 60
        assert mgr.failure_rate > 0.15

    def test_execution_failures_tag_irat(self):
        for seed in range(200):
            result = manager(seed=seed).execute(
                RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
                RAT.NR, SignalLevel.LEVEL_0,
            )
            if result.stage is HandoverStage.EXECUTION:
                assert result.cause == "IRAT_HANDOVER_FAILED"
                break
        else:
            pytest.fail("no execution-stage failure in 200 tries")

    def test_degraded_source_loses_measurement_reports(self):
        mgr = manager(seed=2)
        stages = Counter(
            mgr.execute(RAT.LTE, SignalLevel.LEVEL_0, AlwaysAdmit(),
                        RAT.NR, SignalLevel.LEVEL_4).stage
            for _ in range(400)
        )
        assert stages[HandoverStage.MEASUREMENT] > 10


class TestEnDcShortcut:
    def test_warm_target_skips_preparation(self):
        """With an EN-DC slave pre-established, even a rejecting target
        BS cannot block the promotion (no preparation exchange)."""
        result = manager(seed=3, endc=warm_endc()).execute(
            RAT.LTE, SignalLevel.LEVEL_4, AlwaysReject(),
            RAT.NR, SignalLevel.LEVEL_3,
        )
        assert result.success

    def test_warm_disturbance_is_much_smaller(self):
        cold = manager(seed=4).execute(
            RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
            RAT.NR, SignalLevel.LEVEL_4,
        )
        warm = manager(seed=4, endc=warm_endc()).execute(
            RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
            RAT.NR, SignalLevel.LEVEL_4,
        )
        assert warm.disturbance_s < cold.disturbance_s / 4

    def test_warm_swap_promotes_the_slave(self):
        endc = warm_endc()
        manager(seed=5, endc=endc).execute(
            RAT.LTE, SignalLevel.LEVEL_4, AlwaysAdmit(),
            RAT.NR, SignalLevel.LEVEL_4,
        )
        assert endc.data_plane_rat is RAT.NR

    def test_cold_target_rat_is_not_warm(self):
        """EN-DC only warms the pre-established slave's RAT."""
        result = manager(seed=6, endc=warm_endc()).execute(
            RAT.NR, SignalLevel.LEVEL_3, AlwaysReject(),
            RAT.LTE, SignalLevel.LEVEL_4,
        )
        # LTE is the *master* here, not the slave: cold path, rejected.
        assert not result.success
