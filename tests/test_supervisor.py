"""Tests for the crash-tolerant shard supervisor.

The contract under test: worker-infrastructure faults (death, hangs
past the deadline, corrupt result payloads, spawn failures) are
retried with backoff and finally degraded to inline execution — the
run completes with the exact serial-run dataset and a full failure
history in ``metadata["execution"]`` — while exceptions raised inside
``simulate_shard`` fail the run fast with the worker's traceback.
"""

import hashlib
import json
import multiprocessing

import pytest

from repro.fleet.scenario import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.parallel import (
    RetryPolicy,
    ShardResultInvalid,
    ShardSimulationError,
    WorkerChaosConfig,
    make_shards,
    run_sharded,
    simulate_shard,
    validate_shard_result,
)
from repro.parallel.worker_chaos import WorkerChaos, WorkerChaosFault

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection tests patch the parent and rely on fork",
)


def tiny_scenario(n_devices=30, seed=11, **kwargs) -> ScenarioConfig:
    return ScenarioConfig(
        n_devices=n_devices,
        seed=seed,
        topology=TopologyConfig(n_base_stations=120, seed=seed + 1),
        **kwargs,
    )


def digest(dataset) -> str:
    hasher = hashlib.sha256()
    for group in (dataset.devices, dataset.base_stations,
                  dataset.failures, dataset.transitions):
        for record in group:
            hasher.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
    return hasher.hexdigest()


#: Fast supervision for fault tests: short backoff, tight deadline.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.02,
                         backoff_max_s=0.1, shard_timeout_s=1.5)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.3)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(5) == pytest.approx(0.3)


class TestWorkerChaos:
    def test_draw_is_deterministic_per_shard_and_attempt(self):
        config = WorkerChaosConfig(seed=5, kill_rate=0.3, hang_rate=0.3,
                                   corrupt_rate=0.3)
        chaos = WorkerChaos(config)
        draws = [chaos.fault_for(shard, attempt)
                 for shard in range(6) for attempt in range(3)]
        assert draws == [chaos.fault_for(shard, attempt)
                         for shard in range(6) for attempt in range(3)]
        # Retries see fresh draws — not every attempt of a shard is
        # doomed to the same fault.
        assert len({chaos.fault_for(0, a) for a in range(20)}) > 1

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            WorkerChaosConfig(kill_rate=0.8, hang_rate=0.4)
        with pytest.raises(ValueError):
            WorkerChaosConfig(kill_rate=-0.1)

    def test_exception_fault_raises(self):
        chaos = WorkerChaos(WorkerChaosConfig(seed=1, exception_rate=1.0))
        with pytest.raises(WorkerChaosFault):
            chaos.on_enter(0, 0)

    def test_corrupt_fault_mangles_result(self):
        scenario = tiny_scenario(n_devices=6)
        [spec] = make_shards(6, 1)
        result = simulate_shard(scenario, spec)
        chaos = WorkerChaos(WorkerChaosConfig(seed=1, corrupt_rate=1.0))
        mangled = chaos.mangle_result(0, 0, result)
        with pytest.raises(ShardResultInvalid):
            validate_shard_result(spec, mangled)


class TestResultValidation:
    def test_accepts_genuine_result(self):
        scenario = tiny_scenario(n_devices=8)
        [spec] = make_shards(8, 1)
        validate_shard_result(spec, simulate_shard(scenario, spec))

    def test_rejects_wrong_type(self):
        [spec] = make_shards(8, 1)
        with pytest.raises(ShardResultInvalid):
            validate_shard_result(spec, "garbage")

    def test_rejects_missing_devices(self):
        scenario = tiny_scenario(n_devices=8)
        [spec] = make_shards(8, 1)
        result = simulate_shard(scenario, spec)
        result.dataset.devices.pop()
        with pytest.raises(ShardResultInvalid):
            validate_shard_result(spec, result)

    def test_rejects_mismatched_spec(self):
        scenario = tiny_scenario(n_devices=8)
        first, second = make_shards(8, 2)
        result = simulate_shard(scenario, first)
        with pytest.raises(ShardResultInvalid):
            validate_shard_result(second, result)


@needs_fork
class TestFaultRecovery:
    """Each fault class ends in the exact serial dataset."""

    def assert_identical_with_history(self, worker_chaos, category,
                                      retry=FAST_RETRY, workers=2,
                                      n_shards=2):
        scenario = tiny_scenario()
        serial = FleetSimulator(scenario).run()
        dataset = run_sharded(scenario, workers=workers,
                              n_shards=n_shards, retry=retry,
                              worker_chaos=worker_chaos)
        assert digest(dataset) == digest(serial)
        execution = dataset.metadata["execution"]
        categories = {f["category"] for f in execution["failures"]}
        assert category in categories
        assert all(f["kind"] == "infrastructure"
                   for f in execution["failures"])
        return execution

    def test_killed_workers_recover(self):
        execution = self.assert_identical_with_history(
            WorkerChaosConfig(seed=2, kill_rate=1.0), "worker-death")
        # Every attempt dies, so both shards exhaust retries and
        # degrade to inline — and the run still completes.
        assert execution["degraded_shards"] == [0, 1]
        assert execution["retries"] == 2 * FAST_RETRY.max_retries
        assert sorted(execution["reran_shards"]) == [0, 1]

    def test_raising_workers_recover(self):
        self.assert_identical_with_history(
            WorkerChaosConfig(seed=2, exception_rate=1.0),
            "worker-death")

    def test_hung_workers_hit_deadline_and_recover(self):
        retry = RetryPolicy(max_retries=1, backoff_base_s=0.02,
                            shard_timeout_s=0.4)
        execution = self.assert_identical_with_history(
            WorkerChaosConfig(seed=2, hang_rate=1.0, hang_s=30.0),
            "deadline", retry=retry)
        assert execution["degraded_shards"] == [0, 1]

    def test_corrupt_results_rejected_and_recovered(self):
        self.assert_identical_with_history(
            WorkerChaosConfig(seed=2, corrupt_rate=1.0),
            "corrupt-result")

    def test_mixed_seeded_chaos_at_four_workers(self):
        """The acceptance-criteria run: kill + hang + corrupt enabled,
        ``workers=4``, byte-identical output, full failure history."""
        scenario = tiny_scenario(n_devices=40)
        serial = FleetSimulator(scenario).run()
        chaos = WorkerChaosConfig(seed=3, kill_rate=0.2, hang_rate=0.2,
                                  corrupt_rate=0.2, hang_s=10.0)
        dataset = run_sharded(
            scenario, workers=4, n_shards=6,
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.02,
                              shard_timeout_s=1.5),
            worker_chaos=chaos,
        )
        assert digest(dataset) == digest(serial)
        execution = dataset.metadata["execution"]
        # The seeded draws at this seed fault several dispatches; every
        # one of them must be on record.
        assert execution["failures"]
        assert execution["retries"] >= 1
        assert execution["reran_shards"]
        faulted = {f["shard"] for f in execution["failures"]}
        assert faulted == set(execution["reran_shards"])
        assert json.dumps(execution)  # must stay JSON-able

    def test_ab_deltas_survive_chaos(self):
        """Common-random-numbers pairing is chaos-proof: faults change
        scheduling, never records."""
        from repro.core.study import run_ab_evaluation

        scenario = tiny_scenario(n_devices=30, seed=3)
        _, _, clean = run_ab_evaluation(scenario)
        chaos = WorkerChaosConfig(seed=7, kill_rate=0.3)
        vanilla = run_sharded(scenario.vanilla(), workers=2,
                              retry=FAST_RETRY, worker_chaos=chaos)
        patched = run_sharded(scenario.patched(), workers=2,
                              retry=FAST_RETRY, worker_chaos=chaos)
        from repro.analysis.evaluation import evaluate_ab

        assert evaluate_ab(vanilla, patched) == clean


@needs_fork
class TestSimulationFailures:
    def test_simulation_bug_fails_fast_with_worker_traceback(self,
                                                             monkeypatch):
        def broken(self, spec):
            raise RuntimeError("injected simulation bug")

        monkeypatch.setattr(
            "repro.fleet.simulator.FleetSimulator.simulate_shard",
            broken,
        )
        with pytest.raises(ShardSimulationError) as excinfo:
            run_sharded(tiny_scenario(), workers=2, retry=FAST_RETRY)
        message = str(excinfo.value)
        assert "injected simulation bug" in message
        assert "worker traceback" in message
        assert excinfo.value.error_type == "RuntimeError"

    def test_simulation_bug_is_not_retried(self, monkeypatch):
        calls = multiprocessing.get_context("fork").Value("i", 0)

        def counting_bug(self, spec):
            with calls.get_lock():
                calls.value += 1
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(
            "repro.fleet.simulator.FleetSimulator.simulate_shard",
            counting_bug,
        )
        with pytest.raises(ShardSimulationError):
            run_sharded(tiny_scenario(), workers=2, retry=FAST_RETRY)
        # Fail fast: at most one dispatch per shard, no retries of a
        # deterministic failure.
        assert calls.value <= 2


class TestInlineFallback:
    """The engine records *why* it did not run in worker processes."""

    def test_no_start_method_reason_recorded_verbatim(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.engine.preferred_start_method", lambda: None
        )
        dataset = run_sharded(tiny_scenario(n_devices=8), workers=2)
        execution = dataset.metadata["execution"]
        assert execution["mode"] == "inline"
        assert execution["fallback_reason"] == (
            "no multiprocessing start method available"
        )

    def test_supervisor_failure_reason_recorded_verbatim(self,
                                                         monkeypatch):
        class Collapsing:
            def __init__(self, *args, **kwargs):
                from repro.parallel.supervisor import SupervisionReport

                self.report = SupervisionReport()

            def run(self):
                raise RuntimeError("injected pool collapse")

        monkeypatch.setattr("repro.parallel.engine.ShardSupervisor",
                            Collapsing)
        scenario = tiny_scenario(n_devices=8)
        serial = FleetSimulator(scenario).run()
        dataset = run_sharded(scenario, workers=2)
        execution = dataset.metadata["execution"]
        assert execution["mode"] == "inline"
        assert execution["fallback_reason"] == (
            "supervisor failed (RuntimeError: injected pool collapse); "
            "ran inline"
        )
        assert digest(dataset) == digest(serial)

    def test_invalid_mode_env_raises_documented_valueerror(self,
                                                           monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MODE", "threads")
        with pytest.raises(ValueError, match="unknown parallel mode"):
            run_sharded(tiny_scenario(n_devices=8), workers=2)

    def test_single_shard_process_request_runs_inline_silently(self):
        dataset = run_sharded(tiny_scenario(n_devices=8), workers=2,
                              n_shards=1)
        execution = dataset.metadata["execution"]
        assert execution["mode"] == "inline"
        assert "fallback_reason" not in execution
        assert execution["retries"] == 0
        assert execution["reran_shards"] == []

    def test_inline_runs_report_empty_supervision(self):
        dataset = run_sharded(tiny_scenario(n_devices=8), workers=2,
                              mode="inline")
        execution = dataset.metadata["execution"]
        assert execution["retries"] == 0
        assert execution["reran_shards"] == []
        assert execution["degraded_shards"] == []
        assert execution["failures"] == []
