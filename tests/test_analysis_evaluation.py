"""Tests for the Sec. 4.3 A/B evaluation and text reports."""

import pytest

from repro.analysis import report
from repro.analysis.evaluation import evaluate_ab
from repro.analysis.transitions import transition_increase_matrix
from repro.analysis.isp_bs import normalized_prevalence_by_level
from repro.core.study import NationwideStudy


@pytest.fixture(scope="module")
def evaluation(vanilla_dataset, patched_dataset):
    return evaluate_ab(vanilla_dataset, patched_dataset)


class TestAbEvaluation:
    def test_5g_frequency_drops_sharply(self, evaluation):
        """Sec. 4.3: 40.3% fewer failures on participant 5G phones."""
        assert 0.25 <= evaluation.frequency_reduction_5g <= 0.55

    def test_5g_prevalence_does_not_worsen_substantially(self, evaluation):
        """Sec. 4.3: ~10% prevalence reduction (a weaker signal than
        frequency; the paper notes per-type fluctuation)."""
        assert evaluation.prevalence_reduction_5g > -0.10

    def test_stall_duration_reduction(self, evaluation):
        """Fig. 21: 38% Data_Stall duration reduction (we accept a
        generous band around it)."""
        assert 0.15 <= evaluation.stall_duration_reduction <= 0.60

    def test_total_duration_reduction(self, evaluation):
        """Fig. 21: 36% total-duration reduction."""
        assert 0.15 <= evaluation.total_duration_reduction <= 0.60

    def test_median_does_not_increase(self, evaluation):
        assert (evaluation.median_duration_after_s
                <= evaluation.median_duration_before_s * 1.2)

    def test_per_type_frequency_reductions_are_positive(self, evaluation):
        for delta in evaluation.per_type.values():
            assert delta.frequency_reduction > 0.0

    def test_stall_frequency_reduction_is_large(self, evaluation):
        """Sec. 4.3: Data_Stall frequency fell 42.4% on 5G phones."""
        stall = evaluation.per_type["DATA_STALL"]
        assert stall.frequency_reduction > 0.20


class TestReports:
    def test_table1_renders_all_models(self, vanilla_dataset):
        text = report.render_table1(vanilla_dataset)
        assert "Prevalence" in text
        assert text.count("\n") >= 30

    def test_table2_renders_cumulative(self, vanilla_dataset):
        text = report.render_table2(vanilla_dataset)
        assert "GPRS_REGISTRATION_FAIL" in text
        assert "cumulative" in text

    def test_general_stats_renders(self, vanilla_dataset):
        text = report.render_general_stats(vanilla_dataset)
        assert "prevalence" in text
        assert "duration share by type" in text

    def test_level_series_renders_bars(self, vanilla_dataset):
        series = normalized_prevalence_by_level(vanilla_dataset)
        text = report.render_level_series(series)
        assert "#" in text
        assert text.count("\n") == 7

    def test_transition_matrix_renders(self, vanilla_dataset):
        matrix = transition_increase_matrix(vanilla_dataset, "4G", "5G")
        text = report.render_transition_matrix(matrix)
        assert "4G level-i -> 5G level-j" in text

    def test_ab_report_renders(self, evaluation):
        text = report.render_ab_evaluation(evaluation)
        assert "frequency reduction" in text
        assert "median duration" in text

    def test_isp_report_renders(self, vanilla_dataset):
        text = report.render_isp_stats(vanilla_dataset)
        assert "ISP-A" in text and "ISP-C" in text

    def test_level_series_renders_empty(self):
        text = report.render_level_series({})
        assert text == "level  normalized prevalence\n"

    def test_cdf_renders_empty(self):
        text = report.render_cdf([], [], label="duration")
        assert "duration" in text
        assert text.count("\n") == 1


def _ab_device(device_id, **kwargs):
    from repro.dataset.records import DeviceRecord

    defaults = dict(
        device_id=device_id, model=1, android_version="10.0",
        has_5g=True, isp="ISP-A",
        exposure_s={("5G", 3): 1_000.0},
    )
    defaults.update(kwargs)
    return DeviceRecord(**defaults)


def _ab_failure(device_id, **kwargs):
    from repro.dataset.records import FailureRecord

    defaults = dict(
        device_id=device_id, model=1, android_version="10.0",
        has_5g=True, isp="ISP-A", failure_type="DATA_SETUP_ERROR",
        start_time=10.0, duration_s=20.0, bs_id=1, rat="5G",
        signal_level=3, deployment="URBAN",
    )
    defaults.update(kwargs)
    return FailureRecord(**defaults)


class TestDegenerateArms:
    """Empty arms must yield 0-valued statistics, never NaN."""

    def _assert_nan_free(self, evaluation):
        import math

        for value in (
            evaluation.prevalence_reduction_5g,
            evaluation.frequency_reduction_5g,
            evaluation.stall_duration_reduction,
            evaluation.total_duration_reduction,
            evaluation.median_duration_before_s,
            evaluation.median_duration_after_s,
        ):
            assert math.isfinite(value)
        for delta in evaluation.per_type.values():
            assert math.isfinite(delta.prevalence_reduction)
            assert math.isfinite(delta.frequency_reduction)

    def test_arm_without_data_stalls(self):
        from repro.dataset.store import Dataset

        vanilla = Dataset(
            devices=[_ab_device(1), _ab_device(2)],
            failures=[_ab_failure(1),
                      _ab_failure(2, failure_type="DATA_STALL")],
        )
        patched = Dataset(
            devices=[_ab_device(1), _ab_device(2)],
            failures=[_ab_failure(1)],  # no Data_Stall in this arm
        )
        evaluation = evaluate_ab(vanilla, patched)
        self._assert_nan_free(evaluation)
        assert evaluation.stall_duration_reduction == 1.0

    def test_arm_without_any_failures(self):
        from repro.dataset.store import Dataset

        vanilla = Dataset(
            devices=[_ab_device(1), _ab_device(2)],
            failures=[_ab_failure(1),
                      _ab_failure(2, failure_type="DATA_STALL")],
        )
        patched = Dataset(devices=[_ab_device(1), _ab_device(2)])
        evaluation = evaluate_ab(vanilla, patched)
        self._assert_nan_free(evaluation)
        assert evaluation.frequency_reduction_5g == 1.0
        assert evaluation.median_duration_after_s == 0.0

    def test_both_arms_without_failures(self):
        from repro.dataset.store import Dataset

        vanilla = Dataset(devices=[_ab_device(1)])
        patched = Dataset(devices=[_ab_device(1)])
        evaluation = evaluate_ab(vanilla, patched)
        self._assert_nan_free(evaluation)
        assert evaluation.stall_duration_reduction == 0.0
        assert evaluation.total_duration_reduction == 0.0


class TestStudyOrchestrator:
    def test_analyze_builds_a_full_result(self, vanilla_dataset):
        result = NationwideStudy.analyze(vanilla_dataset)
        assert result.general.n_devices == vanilla_dataset.n_devices
        assert result.models
        assert result.error_codes
        assert len(result.isps) == 3
        assert result.zipf.a > 0
        rendered = result.render()
        assert "Table 1" in rendered
        assert "Zipf" in rendered
