"""Tests for the organic (schedule-free) simulation mode."""

import pytest

from repro.fleet.organic import OrganicSimulator


@pytest.fixture(scope="module")
def organic(topology_module=None):
    from repro.network.topology import NationalTopology, TopologyConfig

    topology = NationalTopology(
        TopologyConfig(n_base_stations=1_500, seed=3)
    )
    return OrganicSimulator(topology, seed=7).run(
        n_devices=60, sessions_per_device=50
    )


class TestOrganicRun:
    def test_attempts_are_collected(self, organic):
        assert len(organic.attempts) > 2_000

    def test_most_sessions_succeed(self, organic):
        """Failures are the exception in organic use, as in reality."""
        assert organic.failure_rate() < 0.35

    def test_failures_do_happen(self, organic):
        assert organic.failure_rate() > 0.02

    def test_failed_attempts_carry_causes(self, organic):
        failures = [a for a in organic.attempts if not a.success]
        assert failures
        assert all(a.cause for a in failures)

    def test_monitor_filters_rational_rejections(self, organic):
        """Organic overload rejections are surfaced but filtered."""
        assert sum(a.filtered for a in organic.attempts) > 0


class TestOrganicTendencies:
    """The paper's mechanisms must show through with no scheduling."""

    def test_hubs_produce_more_failure_events_than_suburbs(self, organic):
        """Hubs surface more Data_Setup_Error *events* per session
        (the paper's unit) even though retries often rescue the
        session itself — dense-cell EMM trouble is transient."""
        def events_per_session(deployment):
            pool = [a for a in organic.attempts
                    if a.deployment == deployment]
            return sum(a.true_failures + a.filtered
                       for a in pool) / len(pool)

        assert (events_per_session("TRANSPORT_HUB")
                > events_per_session("SUBURBAN"))

    def test_level0_fails_more_than_level4(self, organic):
        rates = organic.failure_rate_by(lambda a: a.signal_level)
        assert rates[0] > rates[4]

    def test_3g_is_healthier_than_its_neighbours(self, organic):
        rates = organic.failure_rate_by(lambda a: a.rat)
        assert rates["3G"] < rates["2G"]
        assert rates["3G"] < rates["4G"]

    def test_predicate_filtering(self, organic):
        hub_rate = organic.failure_rate(
            lambda a: a.deployment == "TRANSPORT_HUB"
        )
        assert 0.0 <= hub_rate <= 1.0

    def test_empty_predicate_rejected(self, organic):
        with pytest.raises(ValueError):
            organic.failure_rate(lambda a: a.deployment == "MOON")
