"""Reproduce the deployment evaluation (Sec. 4.3, Figs. 19-21).

Runs the same fleet scenario twice — once under vanilla Android
(blind-5G RAT selection, 60/60/60 recovery probations) and once under
the patched system (Stability-Compatible RAT Transition with EN-DC,
TIMP-based recovery) — with common random numbers, then reports the
reductions the paper reports:

* prevalence / frequency of failures on 5G phones (Figs. 19-20),
* per-failure-type deltas,
* Data_Stall and total duration reductions plus medians (Fig. 21).

Usage::

    python examples/enhancement_ab.py [n_devices] [--workers N]

``--workers N`` runs each arm sharded across N worker processes; the
paired deltas are identical at any worker count because both arms'
per-device streams depend only on (seed, device id, purpose).
"""

import argparse
import time

from repro import ScenarioConfig, run_ab_evaluation
from repro.analysis.report import render_ab_evaluation
from repro.network.topology import TopologyConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n_devices", nargs="?", type=int, default=2_000)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard each arm across N worker processes")
    args = parser.parse_args()
    n_devices = args.n_devices
    scenario = ScenarioConfig(
        n_devices=n_devices,
        seed=1104,
        topology=TopologyConfig(n_base_stations=max(400, n_devices // 2),
                                seed=1105),
    )
    print(f"Running both arms over {n_devices} devices "
          f"(workers={args.workers or 1})...")
    started = time.perf_counter()
    vanilla, patched, evaluation = run_ab_evaluation(
        scenario, workers=args.workers
    )
    elapsed = time.perf_counter() - started
    print(f"done in {elapsed:.1f} s "
          f"(vanilla: {vanilla.n_failures} failures, "
          f"patched: {patched.n_failures})\n")

    print(render_ab_evaluation(evaluation))
    print("Paper anchors: -10% prevalence / -40.3% frequency on 5G "
          "phones; -38% stall duration; -36% total duration.")


if __name__ == "__main__":
    main()
