"""Quickstart: run a small nationwide measurement study and print the
Sec. 3 analysis report.

Usage::

    python examples/quickstart.py [n_devices] [--workers N]

The study simulates an opt-in fleet of Android devices (34 hardware
models, 3 ISPs) under vanilla Android mechanisms, collects every true
cellular failure through the Android-MOD monitoring pipeline, and
recomputes the paper's general statistics, Table 1, Table 2, the ISP
landscape, the normalized-prevalence-by-signal-level series, and the
BS Zipf ranking.  ``--workers N`` shards the fleet across N worker
processes (identical records, see docs/performance.md).
"""

import argparse
import time

from repro import NationwideStudy, ScenarioConfig
from repro.network.topology import TopologyConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n_devices", nargs="?", type=int, default=2_000)
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the fleet across N worker processes")
    args = parser.parse_args()
    n_devices = args.n_devices
    scenario = ScenarioConfig(
        n_devices=n_devices,
        seed=2020,
        topology=TopologyConfig(n_base_stations=max(400, n_devices // 2),
                                seed=2021),
    )
    print(f"Simulating {n_devices} devices "
          f"({scenario.topology.n_base_stations} base stations, "
          f"workers={args.workers or 1})...")
    started = time.perf_counter()
    result = NationwideStudy(scenario=scenario).run(workers=args.workers)
    elapsed = time.perf_counter() - started
    print(f"done in {elapsed:.1f} s — "
          f"{result.general.n_failures} failures collected\n")
    print(result.render())

    print("== 5G vs non-5G (Figs. 6-7) ==")
    comparison = result.comparison_5g
    print(f"  5G:     prevalence {comparison.prevalence_a:.1%}, "
          f"frequency {comparison.frequency_a:.1f}")
    print(f"  non-5G: prevalence {comparison.prevalence_b:.1%}, "
          f"frequency {comparison.frequency_b:.1f}")

    print("\n== Android 10 vs 9 (Figs. 8-9) ==")
    comparison = result.comparison_android
    print(f"  Android 10: prevalence {comparison.prevalence_a:.1%}, "
          f"frequency {comparison.frequency_a:.1f}")
    print(f"  Android 9:  prevalence {comparison.prevalence_b:.1%}, "
          f"frequency {comparison.frequency_b:.1f}")


if __name__ == "__main__":
    main()
