"""Fit the TIMP from measured data and anneal the probation vector.

This is the Sec. 4.2 pipeline end to end:

1. run a measurement study (vanilla arm) to collect Data_Stall records;
2. estimate the time-dependent natural-recovery probability
   P_{i->e}(t) with a Kaplan-Meier fit (stage- and user-ended stalls
   are right-censored);
3. search for the probation vector minimizing expected recovery time
   with simulated annealing;
4. validate by Monte-Carlo through the *real* recovery engine;
5. compare against the paper's deployed optimum (21 / 6 / 16 s).

Usage::

    python examples/timp_fitting.py
"""

import random

from repro import ScenarioConfig
from repro.fleet.simulator import FleetSimulator
from repro.network.topology import TopologyConfig
from repro.timp.annealing import optimize_probations
from repro.timp.expected_time import (
    expected_recovery_time,
    simulate_expected_recovery_time,
)
from repro.timp.model import RecoveryCdf, TimpModel


def main() -> None:
    scenario = ScenarioConfig(
        n_devices=1_500, seed=42,
        topology=TopologyConfig(n_base_stations=800, seed=43),
    )
    print("Collecting Data_Stall field data...")
    dataset = FleetSimulator(scenario).run()
    stalls = dataset.failures_of_type("DATA_STALL")
    print(f"  {len(stalls)} stall records")

    cdf = RecoveryCdf.from_dataset(dataset)
    print("\nFitted natural-recovery CDF (Fig. 10 anchors):")
    for t in (10, 30, 60, 300, 1200):
        print(f"  P(recovered by {t:>5} s) = {cdf(t):.2f}")

    model = TimpModel(recovery_cdf=cdf)
    result = optimize_probations(model, rng=random.Random(17))
    p0, p1, p2 = result.best_probations_s
    print(f"\nAnnealed probations: {p0:.0f} / {p1:.0f} / {p2:.0f} s "
          f"(paper: 21 / 6 / 16 s)")
    print(f"  objective: {result.best_value:.1f} s vs "
          f"{result.default_value:.1f} s for vanilla 60/60/60 "
          f"({result.improvement:.0%} better)")

    print("\nEq. (1) evaluation (as printed in the paper):")
    for label, probations in (("optimized", result.best_probations_s),
                              ("vanilla", (60.0, 60.0, 60.0))):
        print(f"  T_recovery[{label:>9}] = "
              f"{expected_recovery_time(model, probations):.1f} s")

    print("\nMonte-Carlo validation through the real recovery engine:")
    naturals = cdf.sample_naturals(2_000)
    for label, probations in (("optimized", result.best_probations_s),
                              ("paper 21/6/16", (21.0, 6.0, 16.0)),
                              ("vanilla 60/60/60", (60.0, 60.0, 60.0))):
        mean = simulate_expected_recovery_time(
            probations, naturals, random.Random(1), samples=3_000
        )
        print(f"  mean stall duration [{label:>16}] = {mean:.1f} s")


if __name__ == "__main__":
    main()
