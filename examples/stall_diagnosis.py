"""Deep dive into one Data_Stall episode, component by component.

Walks the exact chain the paper instruments (Sec. 2):

1. a network-side fault is injected into the device's netstack;
2. kernel TCP counters record outbound-without-inbound traffic;
3. vanilla Android's detector trips on the >10-outbound/0-inbound rule;
4. the Android-MOD prober classifies the stall (ICMP/DNS volleys) and
   would measure its duration with <= 5 s error;
5. the three-stage progressive recovery runs — once with vanilla
   Android's 60/60/60 probations and once with the TIMP trigger —
   and the timelines are printed side by side.

Also demonstrates the false-positive verdicts: a firewall misconfig
and a DNS outage are probed and correctly ruled out.

Usage::

    python examples/stall_diagnosis.py
"""

import random

from repro.android.data_stall import VanillaDataStallDetector
from repro.android.recovery import (
    RecoveryEngine,
    TIMP_RECOVERY_POLICY,
    VANILLA_RECOVERY_POLICY,
)
from repro.monitoring.prober import NetworkStateProber
from repro.netstack.faults import ActiveFault, FaultKind
from repro.netstack.stack import DeviceNetStack
from repro.simtime import SimClock


def run_episode(policy, label: str) -> None:
    clock = SimClock()
    stack = DeviceNetStack()
    detector = VanillaDataStallDetector(clock, stack.counters)
    rng = random.Random(11)

    # A BS-side outage that would last 8 minutes if nothing intervened.
    stack.inject_fault(ActiveFault(FaultKind.NETWORK_STALL,
                                   start=0.0, duration=480.0))
    stack.simulate_traffic(0.0, 30.0, rng)
    clock.advance(30.0)

    event = detector.check()
    assert event is not None, "detector must trip on the signature"
    print(f"\n--- {label} ---")
    print(f"t={clock.now():6.1f}s  Data_Stall suspected "
          f"(outbound={stack.counters.outbound_in_window(clock.now())}, "
          f"inbound={stack.counters.inbound_in_window(clock.now())})")

    volley = NetworkStateProber(clock).probe_once(stack, 1.0, 5.0)
    print(f"t={clock.now():6.1f}s  prober verdict: {volley.verdict.value}")

    engine = RecoveryEngine(clock, stack, detector, policy, rng)
    resolution = engine.run()
    for offset, note in resolution.timeline:
        print(f"  +{offset:6.1f}s  {note}")
    print(f"=> stall ended after {resolution.duration_s:.1f} s "
          f"(stages executed: {resolution.stages_executed})")


def show_false_positives() -> None:
    print("\n--- false positives the prober rules out (Sec. 2.2) ---")
    for kind in (FaultKind.FIREWALL_MISCONFIG, FaultKind.DNS_OUTAGE):
        clock = SimClock()
        stack = DeviceNetStack()
        stack.inject_fault(ActiveFault(kind, start=0.0, duration=600.0))
        volley = NetworkStateProber(clock).probe_once(stack, 1.0, 5.0)
        print(f"  {kind.value:<22} -> {volley.verdict.value}")


def main() -> None:
    run_episode(VANILLA_RECOVERY_POLICY, "vanilla Android (60/60/60 s)")
    run_episode(TIMP_RECOVERY_POLICY, "TIMP trigger (21/6/16 s)")
    show_false_positives()


if __name__ == "__main__":
    main()
