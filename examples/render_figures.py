"""Render every reproducible paper figure to SVG.

Runs both arms of a small study and writes one SVG per figure into
``figures/`` — open them next to the paper's Figures 2-21 and compare
shapes directly.

Usage::

    python examples/render_figures.py [n_devices] [out_dir]
"""

import sys
import time

from repro import ScenarioConfig, run_ab_evaluation
from repro.analysis.figures import render_paper_figures
from repro.network.topology import TopologyConfig


def main() -> None:
    n_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 1_500
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "figures"
    scenario = ScenarioConfig(
        n_devices=n_devices,
        seed=77,
        topology=TopologyConfig(n_base_stations=max(600, n_devices),
                                seed=78),
    )
    print(f"Simulating both arms ({n_devices} devices)...")
    started = time.perf_counter()
    vanilla, patched, _evaluation = run_ab_evaluation(scenario)
    print(f"done in {time.perf_counter() - started:.1f} s; rendering...")
    paths = render_paper_figures(vanilla, patched, out_dir=out_dir)
    for path in paths:
        print(f"  wrote {path}")
    print(f"{len(paths)} figures in {out_dir}/")


if __name__ == "__main__":
    main()
