"""Compare RAT selection policies on sampled transition scenarios.

Shows how Android 10's blind 5G preference walks into the paper's
canonical trap — a healthy 4G connection abandoned for level-0 5G —
and how the Stability-Compatible policy vetoes exactly those moves
while keeping genuine 5G upgrades, using the measured risk matrices
and the data-rate no-side-effect check (Sec. 4.2).

Usage::

    python examples/rat_policy_playground.py
"""

import random
from collections import Counter

from repro.android.rat_policy import (
    Android10BlindPolicy,
    RatCandidate,
    StabilityCompatiblePolicy,
)
from repro.fleet import behavior
from repro.radio.rat import RAT
from repro.radio.throughput import expected_data_rate_mbps


def describe(candidate: RatCandidate) -> str:
    rate = expected_data_rate_mbps(candidate.rat, candidate.signal_level)
    return (f"{candidate.rat.label} level-{int(candidate.signal_level)} "
            f"(~{rate:,.0f} Mbps)")


def main() -> None:
    rng = random.Random(99)
    blind = Android10BlindPolicy()
    stable = StabilityCompatiblePolicy()

    print("Ten sampled transition opportunities on a 5G phone:\n")
    for index in range(10):
        scenario = behavior.sample_transition_scenario(rng, has_5g=True)
        current = RatCandidate(scenario.current_rat,
                               scenario.current_level)
        candidates = [RatCandidate(rat, level)
                      for rat, level in scenario.candidates]
        blind_choice = blind.select(current, candidates)
        stable_choice = stable.select(current, candidates)
        disagreement = "  <-- veto" if (blind_choice.rat
                                        is not stable_choice.rat) else ""
        print(f"#{index}: at {describe(current)}")
        print(f"    blind  -> {describe(blind_choice)}")
        print(f"    stable -> {describe(stable_choice)}{disagreement}")

    # Aggregate over many scenarios: how often does each policy end up
    # on level-0 5G (the failure hot spot of Fig. 17f)?
    outcomes: Counter[str] = Counter()
    n = 20_000
    for _ in range(n):
        scenario = behavior.sample_transition_scenario(rng, has_5g=True)
        current = RatCandidate(scenario.current_rat,
                               scenario.current_level)
        candidates = [RatCandidate(rat, level)
                      for rat, level in scenario.candidates]
        for name, policy in (("blind", blind), ("stable", stable)):
            chosen = policy.select(current, candidates)
            if chosen.rat is RAT.NR and int(chosen.signal_level) == 0:
                outcomes[name] += 1

    print(f"\nOver {n} opportunities, time spent on level-0 5G:")
    print(f"  Android 10 blind policy : {outcomes['blind'] / n:.1%}")
    print(f"  stability-compatible    : {outcomes['stable'] / n:.1%}")
    print("\nThe veto removes the hot spot without giving up genuine "
          "5G upgrades — the mechanism behind the 40% failure "
          "reduction on 5G phones (Sec. 4.3).")


if __name__ == "__main__":
    main()
