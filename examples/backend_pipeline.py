"""The full data path: device records -> compressed uploads -> backend.

Runs a small fleet, ships every failure record through the device-side
:class:`~repro.monitoring.uploader.UploadBatcher` into the backend
:class:`~repro.backend.ingest.IngestionServer` (including a simulated
retry storm the deduplicator must absorb), then checks that the
backend's *streaming* aggregates agree with the batch analysis over
the same records — and finally replays the same records over a *lossy*
chaos transport (drops, duplicates, corruption) and reconciles both
ends.

Usage::

    python examples/backend_pipeline.py [n_devices]
"""

import random
import sys
import time

from repro import ChaosConfig, ScenarioConfig, run_telemetry_pipeline
from repro.analysis.stats import compute_general_stats
from repro.backend.ingest import IngestionServer
from repro.fleet.simulator import FleetSimulator
from repro.monitoring.uploader import UploadBatcher
from repro.network.topology import TopologyConfig


def main() -> None:
    n_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    scenario = ScenarioConfig(
        n_devices=n_devices, seed=5,
        topology=TopologyConfig(n_base_stations=max(300, n_devices // 2),
                                seed=6),
    )
    print(f"Simulating {n_devices} devices...")
    started = time.perf_counter()
    dataset = FleetSimulator(scenario).run()
    print(f"done in {time.perf_counter() - started:.1f} s; "
          f"uploading {dataset.n_failures} records...")

    server = IngestionServer()
    batcher = UploadBatcher(transport=server.receive)
    rng = random.Random(1)
    for record in dataset.failures:
        batcher.enqueue(record.to_dict())
        # Devices flush opportunistically; WiFi comes and goes.
        batcher.maybe_flush(wifi_available=rng.random() < 0.3)
        # ~2% of uploads are retried after a connectivity loss.
        if rng.random() < 0.02:
            batcher.enqueue(record.to_dict())
    batcher.maybe_flush(wifi_available=True)

    print(f"\nbackend: accepted={server.accepted} "
          f"duplicates={server.duplicates} "
          f"malformed={server.malformed} "
          f"({server.bytes_received / 1e6:.1f} MB received)")
    assert server.accepted == dataset.n_failures

    batch = compute_general_stats(dataset)
    print("\nstreaming vs batch analysis:")
    print(f"  median duration: {server.duration_median.value():6.1f} s "
          f"(batch {batch.median_duration_s:.1f} s)")
    for failure_type, stream in sorted(server.duration_stats.items()):
        print(f"  {failure_type:<18} mean {stream.mean:8.1f} s over "
              f"{stream.count} records")
    share = server.duration_share()
    print(f"  Data_Stall duration share: "
          f"{share.get('DATA_STALL', 0):.1%} "
          f"(batch "
          f"{batch.duration_share_by_type.get('DATA_STALL', 0):.1%})")

    chaos = ChaosConfig(seed=13, drop_rate=0.25, duplicate_rate=0.15,
                        reorder_rate=0.05, corrupt_rate=0.02)
    print(f"\nreplaying over a lossy transport "
          f"(drop {chaos.drop_rate:.0%}, dup {chaos.duplicate_rate:.0%}, "
          f"corrupt {chaos.corrupt_rate:.0%})...")
    result = run_telemetry_pipeline(dataset, chaos)
    print(result.report.render())
    assert result.report.ok, "unexplained telemetry losses"


if __name__ == "__main__":
    main()
